package wf

import (
	"os"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// sampleDAX is a 4-job diamond in Pegasus DAX v3 syntax: preprocess
// feeds two parallel findrange jobs, which feed analyze.
const sampleDAX = `<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="3.4" name="blackdiamond" jobCount="4">
  <job id="ID0000001" name="preprocess" runtime="30.5">
    <uses file="f.input" link="input" size="1000000"/>
    <uses file="f.b1" link="output" size="400000"/>
    <uses file="f.b2" link="output" size="600000"/>
  </job>
  <job id="ID0000002" name="findrange" runtime="60">
    <uses file="f.b1" link="input" size="400000"/>
    <uses file="f.c1" link="output" size="200000"/>
  </job>
  <job id="ID0000003" name="findrange" runtime="62">
    <uses file="f.b2" link="input" size="600000"/>
    <uses file="f.c2" link="output" size="300000"/>
  </job>
  <job id="ID0000004" name="analyze" runtime="15">
    <uses file="f.c1" link="input" size="200000"/>
    <uses file="f.c2" link="input" size="300000"/>
    <uses file="f.output" link="output" size="50000"/>
  </job>
  <child ref="ID0000002"><parent ref="ID0000001"/></child>
  <child ref="ID0000003"><parent ref="ID0000001"/></child>
  <child ref="ID0000004">
    <parent ref="ID0000002"/>
    <parent ref="ID0000003"/>
  </child>
</adag>`

func TestReadDAX(t *testing.T) {
	w, err := ReadDAX(strings.NewReader(sampleDAX))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "blackdiamond" {
		t.Errorf("name %q", w.Name)
	}
	if w.NumTasks() != 4 || w.NumEdges() != 4 {
		t.Fatalf("%d tasks, %d edges", w.NumTasks(), w.NumEdges())
	}
	// Runtimes converted at 1e9 instr/s.
	if got := w.Task(0).Weight.Mean; got != 30.5e9 {
		t.Errorf("preprocess weight %v", got)
	}
	// Edge sizes from the shared files.
	sizes := map[[2]TaskID]float64{}
	for _, e := range w.Edges() {
		sizes[[2]TaskID{e.From, e.To}] = e.Size
	}
	want := map[[2]TaskID]float64{
		{0, 1}: 400000, {0, 2}: 600000, {1, 3}: 200000, {2, 3}: 300000,
	}
	for k, v := range want {
		if sizes[k] != v {
			t.Errorf("edge %v size %v, want %v", k, sizes[k], v)
		}
	}
	// External I/O.
	if got := w.Task(0).ExternalIn; got != 1000000 {
		t.Errorf("external in %v", got)
	}
	if got := w.Task(3).ExternalOut; got != 50000 {
		t.Errorf("external out %v", got)
	}
	if w.ExternalInSize() != 1000000 || w.ExternalOutSize() != 50000 {
		t.Error("workflow-level external totals wrong")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDAXErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          `<adag name="x"></adag>`,
		"not xml":        `{"name": "nope"}`,
		"bad runtime":    `<adag name="x"><job id="a" name="j" runtime="0"/></adag>`,
		"dup id":         `<adag name="x"><job id="a" name="j" runtime="1"/><job id="a" name="k" runtime="1"/></adag>`,
		"unknown child":  `<adag name="x"><job id="a" name="j" runtime="1"/><child ref="zz"><parent ref="a"/></child></adag>`,
		"unknown parent": `<adag name="x"><job id="a" name="j" runtime="1"/><child ref="a"><parent ref="zz"/></child></adag>`,
		"negative size":  `<adag name="x"><job id="a" name="j" runtime="1"><uses file="f" link="input" size="-1"/></job></adag>`,
		"cycle": `<adag name="x"><job id="a" name="j" runtime="1"/><job id="b" name="k" runtime="1"/>
			<child ref="a"><parent ref="b"/></child><child ref="b"><parent ref="a"/></child></adag>`,
	}
	for name, doc := range cases {
		if _, err := ReadDAX(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadDAXFile(t *testing.T) {
	path := t.TempDir() + "/w.dax"
	if err := writeFile(path, sampleDAX); err != nil {
		t.Fatal(err)
	}
	w, err := LoadDAX(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() != 4 {
		t.Error("load lost jobs")
	}
	if _, err := LoadDAX(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDAXDependencyWithoutSharedFile(t *testing.T) {
	// A control dependency with no data: edge of size 0.
	doc := `<adag name="x">
	  <job id="a" name="j" runtime="1"/>
	  <job id="b" name="k" runtime="1"/>
	  <child ref="b"><parent ref="a"/></child>
	</adag>`
	w, err := ReadDAX(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumEdges() != 1 || w.Edges()[0].Size != 0 {
		t.Errorf("edges %v", w.Edges())
	}
}
