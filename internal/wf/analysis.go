package wf

import (
	"fmt"
	"sort"
)

// TopoOrder returns the task IDs in a topological order (Kahn's
// algorithm). Ties are broken by ascending task ID so that the order is
// deterministic. It returns an error if the graph has a cycle.
func (w *Workflow) TopoOrder() ([]TaskID, error) {
	n := len(w.tasks)
	indeg := make([]int, n)
	for i := range w.tasks {
		indeg[i] = len(w.pred[i])
	}
	// Min-heap behaviour via sorted frontier; n is small (≤ thousands),
	// and determinism is worth more than the log factor here.
	frontier := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	order := make([]TaskID, 0, n)
	for len(frontier) > 0 {
		sort.Ints(frontier)
		next := frontier[0]
		frontier = frontier[1:]
		order = append(order, TaskID(next))
		for _, e := range w.succ[next] {
			to := int(w.edges[e].To)
			indeg[to]--
			if indeg[to] == 0 {
				frontier = append(frontier, to)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("wf: workflow %q has a cycle (%d of %d tasks ordered)", w.Name, len(order), n)
	}
	return order, nil
}

// Levels partitions tasks into levels of independent tasks, as used by
// BDT: the level of a task is the length (in hops) of the longest path
// from any entry task to it. Tasks within one level are pairwise
// independent. It returns the per-task level and the total number of
// levels, or an error if the graph has a cycle.
func (w *Workflow) Levels() (level []int, numLevels int, err error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	level = make([]int, len(w.tasks))
	maxLevel := -1
	for _, id := range order {
		l := 0
		for _, e := range w.pred[id] {
			from := int(w.edges[e].From)
			if level[from]+1 > l {
				l = level[from] + 1
			}
		}
		level[id] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	return level, maxLevel + 1, nil
}

// BottomLevels computes the HEFT upward rank of every task:
//
//	rank(T) = exec(T) + max over successors S of (comm(T,S) + rank(S))
//
// where exec and comm are caller-provided estimators (typically the
// conservative weight divided by the mean speed, and the edge size
// divided by the bandwidth, per §IV-A). Exit tasks have
// rank = exec(T). It returns an error if the graph has a cycle.
func (w *Workflow) BottomLevels(exec func(Task) float64, comm func(Edge) float64) ([]float64, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]float64, len(w.tasks))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		for _, e := range w.succ[id] {
			edge := w.edges[e]
			v := comm(edge) + rank[edge.To]
			if v > best {
				best = v
			}
		}
		rank[id] = exec(w.tasks[id]) + best
	}
	return rank, nil
}

// TopLevels computes the symmetric downward rank (longest path from an
// entry to T, excluding T's own execution), used by earliest-start-time
// estimates and by some analyses.
func (w *Workflow) TopLevels(exec func(Task) float64, comm func(Edge) float64) ([]float64, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]float64, len(w.tasks))
	for _, id := range order {
		best := 0.0
		for _, e := range w.pred[id] {
			edge := w.edges[e]
			v := rank[edge.From] + exec(w.tasks[edge.From]) + comm(edge)
			if v > best {
				best = v
			}
		}
		rank[id] = best
	}
	return rank, nil
}

// CriticalPathLength returns the length of the longest path through the
// DAG under the given estimators (entry to exit, inclusive of task
// executions and inter-task communications).
func (w *Workflow) CriticalPathLength(exec func(Task) float64, comm func(Edge) float64) (float64, error) {
	ranks, err := w.BottomLevels(exec, comm)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, r := range ranks {
		if r > best {
			best = r
		}
	}
	return best, nil
}

// RankOrder returns task IDs sorted by decreasing value of rank, with
// ties broken by ascending ID. HEFT processes tasks in this order;
// because rank(T) > rank(S) whenever T precedes S (for positive
// estimates), the order is also topological.
func RankOrder(rank []float64) []TaskID {
	ids := make([]TaskID, len(rank))
	for i := range ids {
		ids[i] = TaskID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		ra, rb := rank[ids[a]], rank[ids[b]]
		if ra != rb {
			return ra > rb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// Validate checks structural integrity of the workflow: at least one
// task, acyclicity, valid weight distributions, and non-negative
// external I/O volumes. Edge endpoint and size validity is enforced at
// AddEdge time.
func (w *Workflow) Validate() error {
	if len(w.tasks) == 0 {
		return fmt.Errorf("wf: workflow %q has no tasks", w.Name)
	}
	for _, t := range w.tasks {
		if err := t.Weight.Validate(); err != nil {
			return fmt.Errorf("wf: task %d (%s): %w", t.ID, t.Name, err)
		}
		if t.ExternalIn < 0 || t.ExternalOut < 0 {
			return fmt.Errorf("wf: task %d (%s): negative external I/O", t.ID, t.Name)
		}
	}
	if _, err := w.TopoOrder(); err != nil {
		return err
	}
	return nil
}
