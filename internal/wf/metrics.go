package wf

// Metrics summarizes the structural and quantitative properties the
// scheduling literature characterizes workflows by. They explain the
// qualitative differences between the benchmark families: MONTAGE is
// dense and communication-light per edge, CYBERSHAKE is shallow and
// dominated by external input, LIGO is a collection of short
// independent blocks.
type Metrics struct {
	// Tasks and Edges are the graph's sizes.
	Tasks, Edges int
	// Depth is the number of levels (longest path in hops).
	Depth int
	// Width is the size of the largest level — an upper bound on
	// useful parallelism.
	Width int
	// LevelWidths is the full per-level task count (the parallelism
	// profile).
	LevelWidths []int
	// EdgeDensity is Edges / Tasks.
	EdgeDensity float64
	// CCR is the communication-to-computation ratio: total transfer
	// time (internal edges plus external I/O over the bandwidth)
	// divided by total conservative computation time at the given
	// reference speed. CCR ≪ 1 is compute-bound, CCR ≫ 1 is
	// transfer-bound.
	CCR float64
	// SerialFraction is the conservative work on the longest
	// (compute-only) path over the total work: Amdahl's bound on how
	// much parallelism can help.
	SerialFraction float64
}

// ComputeMetrics derives the metrics under the given reference speed
// (instructions/s) and bandwidth (bytes/s).
func (w *Workflow) ComputeMetrics(refSpeed, bandwidth float64) (Metrics, error) {
	level, numLevels, err := w.Levels()
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		Tasks:       w.NumTasks(),
		Edges:       w.NumEdges(),
		Depth:       numLevels,
		LevelWidths: make([]int, numLevels),
	}
	for _, l := range level {
		m.LevelWidths[l]++
	}
	for _, c := range m.LevelWidths {
		if c > m.Width {
			m.Width = c
		}
	}
	if m.Tasks > 0 {
		m.EdgeDensity = float64(m.Edges) / float64(m.Tasks)
	}

	commTime := (w.TotalDataSize() + w.ExternalInSize() + w.ExternalOutSize()) / bandwidth
	compTime := w.TotalConservativeWork() / refSpeed
	if compTime > 0 {
		m.CCR = commTime / compTime
	}

	exec := func(t Task) float64 { return t.Weight.Conservative() / refSpeed }
	cp, err := w.CriticalPathLength(exec, func(Edge) float64 { return 0 })
	if err != nil {
		return Metrics{}, err
	}
	if compTime > 0 {
		m.SerialFraction = cp / compTime
	}
	return m, nil
}
