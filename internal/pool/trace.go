package pool

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"budgetwf/internal/obs"
	"budgetwf/internal/rng"
	"budgetwf/internal/sched"
	"budgetwf/internal/wfgen"
)

// TenantTraffic describes one tenant's synthetic arrival stream: a
// Poisson process of workflow submissions.
type TenantTraffic struct {
	// Tenant registers the tenant (ID required; limits optional).
	Tenant TenantSpec `json:"tenant"`
	// Rate is the mean arrival rate, in workflows per 1000 virtual
	// seconds. Must be positive and finite: zero-rate arrival specs
	// are rejected.
	Rate float64 `json:"rate"`
	// Count is the number of workflows this tenant submits; must be in
	// [1, 10000].
	Count int `json:"count"`
	// WorkflowType is the wfgen family; default "chain".
	WorkflowType string `json:"workflowType,omitempty"`
	// Tasks is the number of tasks per workflow; default 8.
	Tasks int `json:"tasks,omitempty"`
	// Budget is the per-workflow budget; 0 lifts the per-workflow
	// guard (the tenant-level budget still applies).
	Budget float64 `json:"budget,omitempty"`
	// Algorithm names the planning algorithm; default "heft".
	Algorithm string `json:"algorithm,omitempty"`
}

// TraceSpec describes a reproducible multi-tenant submission trace.
type TraceSpec struct {
	// Seed drives both the arrival processes and the generated
	// workflow instances.
	Seed    uint64          `json:"seed"`
	Tenants []TenantTraffic `json:"tenants"`
}

const maxTraceCount = 10000

func (tt TenantTraffic) withDefaults() TenantTraffic {
	if tt.WorkflowType == "" {
		tt.WorkflowType = string(wfgen.Chain)
	}
	if tt.Tasks == 0 {
		tt.Tasks = 8
	}
	if tt.Algorithm == "" {
		tt.Algorithm = string(sched.NameHeft)
	}
	return tt
}

// Validate classifies every defect in the spec: scalar-domain
// violations (*ValidationError → 400) field by field, then semantic
// ones (*SemanticError → 422) such as duplicate tenant IDs or unknown
// families/algorithms.
func (ts TraceSpec) Validate() error {
	if len(ts.Tenants) == 0 {
		return &ValidationError{Field: "tenants", Msg: "at least one tenant required"}
	}
	seen := make(map[string]bool)
	for i, raw := range ts.Tenants {
		tt := raw.withDefaults()
		field := func(name string) string { return fmt.Sprintf("tenants[%d].%s", i, name) }
		if err := tt.Tenant.Validate(); err != nil {
			var ve *ValidationError
			if errors.As(err, &ve) {
				return &ValidationError{Field: field(ve.Field), Msg: ve.Msg}
			}
			return err
		}
		if tt.Rate <= 0 || math.IsNaN(tt.Rate) || math.IsInf(tt.Rate, 0) {
			return &ValidationError{Field: field("rate"), Msg: fmt.Sprintf("must be a positive finite arrival rate, got %v", tt.Rate)}
		}
		if tt.Count < 1 || tt.Count > maxTraceCount {
			return &ValidationError{Field: field("count"), Msg: fmt.Sprintf("must be in [1, %d], got %d", maxTraceCount, tt.Count)}
		}
		if tt.Tasks < 4 {
			return &ValidationError{Field: field("tasks"), Msg: fmt.Sprintf("must be at least 4, got %d", tt.Tasks)}
		}
		if err := checkBudgetField(field("budget"), tt.Budget); err != nil {
			return err
		}
		if seen[tt.Tenant.ID] {
			return &SemanticError{Msg: fmt.Sprintf("duplicate tenant ID %q in trace", tt.Tenant.ID)}
		}
		seen[tt.Tenant.ID] = true
		if _, err := wfgen.ParseType(tt.WorkflowType); err != nil {
			return &SemanticError{Msg: err.Error()}
		}
		if _, err := sched.ByName(sched.Name(tt.Algorithm)); err != nil {
			return &SemanticError{Msg: err.Error()}
		}
	}
	return nil
}

// Generate realizes the trace deterministically: per-tenant Poisson
// inter-arrival times under Split(tenant index) of the seed, workflow
// instances seeded per submission, merged in (time, tenant order,
// index) order. Same spec, same seed, same trace — byte for byte.
func (ts TraceSpec) Generate() ([]Submission, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	base := rng.New(ts.Seed)
	var subs []Submission
	type key struct {
		at          float64
		tenant, idx int
	}
	keys := make(map[int]key)
	for i, raw := range ts.Tenants {
		tt := raw.withDefaults()
		family, _ := wfgen.ParseType(tt.WorkflowType)
		r := base.Split(uint64(i))
		at := 0.0
		for j := 0; j < tt.Count; j++ {
			at += r.ExpFloat64() * 1000 / tt.Rate
			w, err := wfgen.Generate(family, tt.Tasks, ts.Seed^uint64(i)<<32^uint64(j))
			if err != nil {
				return nil, &SemanticError{Msg: err.Error()}
			}
			keys[len(subs)] = key{at: at, tenant: i, idx: j}
			subs = append(subs, Submission{
				At:        at,
				Tenant:    tt.Tenant,
				Workflow:  w,
				Algorithm: tt.Algorithm,
				Budget:    tt.Budget,
			})
		}
	}
	idx := make([]int, len(subs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka.at != kb.at {
			return ka.at < kb.at
		}
		if ka.tenant != kb.tenant {
			return ka.tenant < kb.tenant
		}
		return ka.idx < kb.idx
	})
	out := make([]Submission, len(subs))
	for i, j := range idx {
		out[i] = subs[j]
	}
	return out, nil
}

// TraceResult is the outcome of running a whole trace.
type TraceResult struct {
	Outcomes  []*Outcome   `json:"outcomes"`
	Tenants   []TenantView `json:"tenants"`
	Stats     Stats        `json:"stats"`
	Decisions []Decision   `json:"-"`
}

// RunTrace builds a pool, enqueues the whole trace, and drains it in
// virtual time (submissions genuinely overlap, unlike Service mode).
func RunTrace(cfg Config, spec TraceSpec, span *obs.Span) (*TraceResult, error) {
	subs, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = spec.Seed
	}
	return RunSubmissions(cfg, subs, span)
}

// RunSubmissions runs an explicit submission list on a fresh pool.
func RunSubmissions(cfg Config, subs []Submission, span *obs.Span) (*TraceResult, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	outcomes := make([]*Outcome, 0, len(subs))
	for _, sub := range subs {
		if sub.Span == nil {
			sub.Span = span
		}
		o, err := p.Enqueue(context.Background(), sub)
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, o)
	}
	if err := p.Run(); err != nil {
		return nil, err
	}
	return &TraceResult{
		Outcomes:  outcomes,
		Tenants:   p.Tenants(),
		Stats:     p.Stats(),
		Decisions: p.Decisions(),
	}, nil
}
