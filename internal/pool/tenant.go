package pool

import (
	"fmt"
	"math"
)

// TenantSpec identifies and configures a tenant. The first submission
// naming a tenant registers it; later submissions may leave every
// limit zero (inherit the registered values) but must not contradict
// them.
type TenantSpec struct {
	// ID names the tenant; required, and unique across the pool.
	ID string `json:"id"`
	// Budget is the tenant-level budget across all its submissions;
	// 0 means unlimited. Once the billed total reaches it, further
	// submissions are rejected and running executions lose their
	// remaining headroom (the executor's budget guard is armed with
	// min(workflow budget, tenant remaining)).
	Budget float64 `json:"budget,omitempty"`
	// MaxVMs caps the tenant's concurrently provisioned VMs
	// (fair-share admission); 0 inherits Config.DefaultMaxVMs.
	MaxVMs int `json:"maxVMs,omitempty"`
	// MaxQueued caps the tenant's concurrently queued-or-running
	// workflows; 0 inherits Config.DefaultMaxQueued.
	MaxQueued int `json:"maxQueued,omitempty"`
}

// Validate classifies scalar-domain violations field by field.
func (t TenantSpec) Validate() error {
	if t.ID == "" {
		return &ValidationError{Field: "tenant.id", Msg: "required"}
	}
	if err := checkBudgetField("tenant.budget", t.Budget); err != nil {
		return err
	}
	if t.MaxVMs < 0 {
		return &ValidationError{Field: "tenant.maxVMs", Msg: fmt.Sprintf("must be non-negative, got %d", t.MaxVMs)}
	}
	if t.MaxQueued < 0 {
		return &ValidationError{Field: "tenant.maxQueued", Msg: fmt.Sprintf("must be non-negative, got %d", t.MaxQueued)}
	}
	return nil
}

// tenant is the pool-side ledger of one tenant.
type tenant struct {
	id        string
	budget    float64
	maxVMs    int
	maxQueued int

	active      int // queued-or-running submissions
	submissions int
	completed   int
	rejected    int
	failed      int

	activeVMs int
	freshVMs  int
	reusedVMs int

	billed    float64 // authoritative, from settled Reports
	liveSpend float64 // running estimate for in-flight executions
	savedInit float64
	idleWaste float64
}

// registerTenant validates the spec and returns the (possibly new)
// tenant ledger. Re-registration with conflicting limits is a
// semantic error: tenant IDs are unique.
func (p *Pool) registerTenant(spec TenantSpec) (*tenant, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ten, ok := p.tenants[spec.ID]; ok {
		if (spec.Budget != 0 && spec.Budget != ten.budget) ||
			(spec.MaxVMs != 0 && spec.MaxVMs != ten.maxVMs) ||
			(spec.MaxQueued != 0 && spec.MaxQueued != ten.maxQueued) {
			return nil, &SemanticError{Msg: fmt.Sprintf(
				"tenant %q already registered with different limits (budget=%v maxVMs=%d maxQueued=%d)",
				spec.ID, ten.budget, ten.maxVMs, ten.maxQueued)}
		}
		return ten, nil
	}
	ten := &tenant{
		id:        spec.ID,
		budget:    spec.Budget,
		maxVMs:    spec.MaxVMs,
		maxQueued: spec.MaxQueued,
	}
	if ten.maxVMs == 0 {
		ten.maxVMs = p.cfg.DefaultMaxVMs
	}
	if ten.maxQueued == 0 {
		ten.maxQueued = p.cfg.DefaultMaxQueued
	}
	p.tenants[spec.ID] = ten
	p.order = append(p.order, spec.ID)
	return ten, nil
}

// TenantView is the externally visible snapshot of one tenant's
// ledger (GET /v1/tenants).
type TenantView struct {
	ID        string  `json:"id"`
	Budget    float64 `json:"budget"`
	Remaining float64 `json:"remaining"` // budget - billed, 0 floor; +Inf sentinel omitted (unlimited = budget 0)
	MaxVMs    int     `json:"maxVMs"`
	MaxQueued int     `json:"maxQueued"`

	Submissions int `json:"submissions"`
	Active      int `json:"active"`
	Completed   int `json:"completed"`
	Rejected    int `json:"rejected"`
	Failed      int `json:"failed"`

	ActiveVMs int `json:"activeVMs"`
	IdleVMs   int `json:"idleVMs"`
	FreshVMs  int `json:"freshVMs"`
	ReusedVMs int `json:"reusedVMs"`

	Billed           float64 `json:"billed"`
	LiveSpend        float64 `json:"liveSpend"`
	SavedInitCost    float64 `json:"savedInitCost"`
	IdleWasteSeconds float64 `json:"idleWasteSeconds"`
}

func (p *Pool) tenantView(ten *tenant) TenantView {
	v := TenantView{
		ID: ten.id, Budget: ten.budget,
		MaxVMs: ten.maxVMs, MaxQueued: ten.maxQueued,
		Submissions: ten.submissions, Active: ten.active,
		Completed: ten.completed, Rejected: ten.rejected, Failed: ten.failed,
		ActiveVMs: ten.activeVMs, FreshVMs: ten.freshVMs, ReusedVMs: ten.reusedVMs,
		Billed: ten.billed, LiveSpend: ten.liveSpend,
		SavedInitCost: ten.savedInit, IdleWasteSeconds: ten.idleWaste,
	}
	if ten.budget > 0 {
		v.Remaining = math.Max(0, ten.budget-ten.billed)
	}
	for _, pv := range p.vms {
		if pv.idle && !pv.gone && pv.tenant == ten.id {
			v.IdleVMs++
		}
	}
	return v
}

// Tenants lists every registered tenant in registration order.
func (p *Pool) Tenants() []TenantView {
	out := make([]TenantView, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.tenantView(p.tenants[id]))
	}
	return out
}

// Tenant returns one tenant's snapshot.
func (p *Pool) Tenant(id string) (TenantView, bool) {
	ten, ok := p.tenants[id]
	if !ok {
		return TenantView{}, false
	}
	return p.tenantView(ten), true
}

// Stats is the pool-wide snapshot backing the daemon's gauges.
type Stats struct {
	Now     float64 `json:"now"`
	Tenants int     `json:"tenants"`

	Submissions int `json:"submissions"`
	Completed   int `json:"completed"`
	Rejected    int `json:"rejected"`
	Failed      int `json:"failed"`

	ActiveVMs     int `json:"activeVMs"`
	IdleVMs       int `json:"idleVMs"`
	Provisioned   int `json:"provisioned"`
	Reused        int `json:"reused"`
	Deprovisioned int `json:"deprovisioned"`
	Extensions    int `json:"extensions"`

	BilledTotal      float64 `json:"billedTotal"`
	SavedInitCost    float64 `json:"savedInitCost"`
	IdleWasteSeconds float64 `json:"idleWasteSeconds"`
}

// Stats snapshots the pool.
func (p *Pool) Stats() Stats {
	st := Stats{
		Now: p.loop.Now(), Tenants: len(p.order),
		Submissions: len(p.subs),
		Provisioned: p.provisioned, Reused: p.reused,
		Deprovisioned: p.deprovisioned, Extensions: p.extensions,
		BilledTotal: p.billedTotal, SavedInitCost: p.savedInit,
		IdleWasteSeconds: p.idleWaste,
	}
	for _, ten := range p.tenants {
		st.Completed += ten.completed
		st.Rejected += ten.rejected
		st.Failed += ten.failed
		st.ActiveVMs += ten.activeVMs
	}
	for _, pv := range p.vms {
		if pv.idle && !pv.gone {
			st.IdleVMs++
		}
	}
	return st
}
