package pool

import (
	"context"
	"sync"
)

// Service is the thread-safe front of a Pool, for the HTTP daemon:
// every submission is admitted at the pool's current virtual-time
// frontier and the loop is drained until that submission reaches a
// terminal state, so Submit is synchronous from the caller's point of
// view while idle VMs, billing boundaries and deprovision timers keep
// flowing through the same deterministic loop.
type Service struct {
	mu sync.Mutex
	p  *Pool
}

// NewService builds a service around a fresh pool.
func NewService(cfg Config) (*Service, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Service{p: p}, nil
}

// Submit enqueues one submission at the frontier and runs it to a
// terminal state. The error covers validation/planning failures
// (classified as *ValidationError or *SemanticError); admission
// rejections come back as a non-nil Outcome in StateRejected.
func (s *Service) Submit(ctx context.Context, sub Submission) (*Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Service-mode arrivals always land at the frontier: wall-clock
	// arrival order defines virtual arrival order.
	sub.At = s.p.Now()
	o, err := s.p.Enqueue(ctx, sub)
	if err != nil {
		return nil, err
	}
	if err := s.p.RunUntil(o); err != nil {
		return o, err
	}
	return o, nil
}

// Tenants lists tenant snapshots in registration order.
func (s *Service) Tenants() []TenantView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Tenants()
}

// Tenant returns one tenant snapshot.
func (s *Service) Tenant(id string) (TenantView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Tenant(id)
}

// Stats snapshots the pool.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Stats()
}

// Decisions returns a copy of the decision log (for diagnostics).
func (s *Service) Decisions() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Decision, len(s.p.decisions))
	copy(out, s.p.decisions)
	return out
}
