package pool

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"budgetwf/internal/online"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/sched"
	"budgetwf/internal/sim"
	"budgetwf/internal/wfgen"
)

// testPlatform returns the default platform with a billing quantum —
// the regime where a shared pool has anything to share.
func testPlatform(quantum float64) *platform.Platform {
	p := platform.Default()
	p.BillingQuantum = quantum
	return p
}

func testPolicy() online.Policy {
	return online.Policy{TimeoutSigma: 2, GainFactor: 1, MaxMigrations: 1}
}

// TestSingleSubmissionMatchesOnline pins the tentpole equivalence: a
// single-tenant, single-workflow run through the shared pool produces
// a Report bit-identical to internal/online's standalone executor on
// the same workflow, weights, platform and budget.
func TestSingleSubmissionMatchesOnline(t *testing.T) {
	for _, family := range []wfgen.Type{wfgen.Montage, wfgen.CyberShake, wfgen.Chain} {
		w, err := wfgen.Generate(family, 20, 11)
		if err != nil {
			t.Fatal(err)
		}
		p := testPlatform(3600)
		const budget = 5.0
		schedule, err := sched.PlanContext(context.Background(), sched.NameHeftBudg, w, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		weights := sim.SampleWeights(w, rng.New(99))

		pol := testPolicy()
		pol.Budget = budget
		want, err := online.Execute(w, p, schedule, weights, pol)
		if err != nil {
			t.Fatal(err)
		}

		res, err := RunSubmissions(Config{Platform: p, Policy: testPolicy()}, []Submission{{
			Tenant:    TenantSpec{ID: "solo"},
			Workflow:  w,
			Algorithm: string(sched.NameHeftBudg),
			Budget:    budget,
			Weights:   weights,
		}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		o := res.Outcomes[0]
		if o.State != StateDone {
			t.Fatalf("%s: outcome %s (%s), want done", family, o.State, o.Reason)
		}
		if !reflect.DeepEqual(want, o.Report) {
			t.Errorf("%s: pooled Report differs from online.Execute:\nonline: %+v\npooled: %+v",
				family, want, o.Report)
		}
	}
}

// renderDecisions joins the decision log into the byte sequence the
// determinism property compares.
func renderDecisions(ds []Decision) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func testTrace() TraceSpec {
	return TraceSpec{
		Seed: 7,
		Tenants: []TenantTraffic{
			{Tenant: TenantSpec{ID: "alice"}, Rate: 2, Count: 4, WorkflowType: "montage", Tasks: 12, Budget: 5, Algorithm: "heftbudg"},
			{Tenant: TenantSpec{ID: "bob"}, Rate: 3, Count: 4, WorkflowType: "chain", Tasks: 8, Algorithm: "heft"},
			{Tenant: TenantSpec{ID: "carol", Budget: 50}, Rate: 1, Count: 3, WorkflowType: "cybershake", Tasks: 12, Budget: 8, Algorithm: "heftbudg+"},
		},
	}
}

// TestTraceDeterminism: a fixed seed and a fixed submission trace
// yield a byte-identical sequence of scheduling decisions, run to run.
func TestTraceDeterminism(t *testing.T) {
	cfg := Config{Platform: testPlatform(3600), Policy: testPolicy(), Seed: 7}
	a, err := RunTrace(cfg, testTrace(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrace(cfg, testTrace(), nil)
	if err != nil {
		t.Fatal(err)
	}
	da, db := renderDecisions(a.Decisions), renderDecisions(b.Decisions)
	if da != db {
		t.Fatalf("decision logs differ between identical runs:\n--- run A\n%s\n--- run B\n%s", da, db)
	}
	if len(a.Decisions) == 0 {
		t.Fatal("empty decision log")
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.Outcomes {
		if !reflect.DeepEqual(a.Outcomes[i], b.Outcomes[i]) {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, a.Outcomes[i], b.Outcomes[i])
		}
	}
}

// twoChainSubs is a minimal reuse scenario: the same tenant (or two
// tenants) submit two small chains back to back, the second arriving
// after the first settles.
func twoChainSubs(t *testing.T, tenantA, tenantB string, secondAt float64) []Submission {
	t.Helper()
	w1, err := wfgen.Generate(wfgen.Chain, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := wfgen.Generate(wfgen.Chain, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []Submission{
		{At: 0, Tenant: TenantSpec{ID: tenantA}, Workflow: w1, Algorithm: "heft"},
		{At: secondAt, Tenant: TenantSpec{ID: tenantB}, Workflow: w2, Algorithm: "heft"},
	}
}

// TestBillingBoundaryDeprovision is the keep/release table: an idle VM
// is kept while its remaining paid time exceeds TimeToShutdown and
// released otherwise, with the wasted idle tail billed to the tenant
// that provisioned it.
func TestBillingBoundaryDeprovision(t *testing.T) {
	const quantum = 1e7 // huge: the first workflow ends far from the boundary
	base := Config{Platform: testPlatform(quantum), Policy: testPolicy(), Seed: 1}

	// Probe run with a tiny threshold: the VM must be kept idle and
	// reused; record its remaining paid time at release.
	keep := base
	keep.TimeToShutdown = 1
	res, err := RunSubmissions(keep, twoChainSubs(t, "alice", "bob", 1000), nil)
	if err != nil {
		t.Fatal(err)
	}
	var remaining float64
	for _, d := range res.Decisions {
		if d.Kind == "release" {
			remaining = d.Amount
			break
		}
	}
	if remaining <= 0 {
		t.Fatalf("no release decision in keep run:\n%s", renderDecisions(res.Decisions))
	}
	if res.Stats.Reused == 0 {
		t.Fatalf("keep run: expected reuse, got stats %+v", res.Stats)
	}
	bob, _ := findTenant(res.Tenants, "bob")
	if bob.ReusedVMs == 0 || bob.SavedInitCost <= 0 {
		t.Fatalf("keep run: bob should have reused alice's VM: %+v", bob)
	}
	// The idle gap before bob leased the VM is alice's waste.
	alice, _ := findTenant(res.Tenants, "alice")
	if alice.IdleWasteSeconds <= 0 {
		t.Fatalf("keep run: idle gap not attributed to provisioning tenant: %+v", alice)
	}

	// The deprovision timer fires at paidUntil - tts, i.e. roughly
	// (remaining - tts) after the first settlement; the second
	// submission arrives 1000s after the first, so:
	cases := []struct {
		name     string
		tts      float64
		wantKept bool
	}{
		{"still idle at second arrival: kept", remaining - 2000, true},
		{"timer fires before second arrival: released", remaining - 500, false},
		{"below threshold at settle: released immediately", remaining + 1, false},
		{"threshold at a full quantum: released immediately", quantum, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.TimeToShutdown = tc.tts
			res, err := RunSubmissions(cfg, twoChainSubs(t, "alice", "bob", 1000), nil)
			if err != nil {
				t.Fatal(err)
			}
			reused := res.Stats.Reused > 0
			if reused != tc.wantKept {
				t.Fatalf("tts=%v: reused=%v, want kept=%v\n%s",
					tc.tts, reused, tc.wantKept, renderDecisions(res.Decisions))
			}
			alice, _ := findTenant(res.Tenants, "alice")
			bobV, _ := findTenant(res.Tenants, "bob")
			if !tc.wantKept {
				// The whole paid tail is alice's waste; bob pays full
				// setup on a fresh VM.
				if alice.IdleWasteSeconds < remaining-2 {
					t.Fatalf("tts=%v: released VM's paid tail (%v) not billed to alice: %+v",
						tc.tts, remaining, alice)
				}
				if bobV.SavedInitCost != 0 {
					t.Fatalf("tts=%v: bob saved setup without reuse: %+v", tc.tts, bobV)
				}
			}
		})
	}
}

func findTenant(vs []TenantView, id string) (TenantView, bool) {
	for _, v := range vs {
		if v.ID == id {
			return v, true
		}
	}
	return TenantView{}, false
}

// TestSharedPoolCheaperThanPrivatePools: on a multi-tenant trace with
// a billing quantum, shared-pool reuse measurably lowers the total
// billed cost versus per-workflow private pools (reuse disabled by a
// threshold of a full quantum).
func TestSharedPoolCheaperThanPrivatePools(t *testing.T) {
	spec := testTrace()
	pooled := Config{Platform: testPlatform(3600), Policy: testPolicy(), Seed: 7, TimeToShutdown: 360}
	private := pooled
	private.TimeToShutdown = 3600 // every released VM is instantly below threshold

	rp, err := RunTrace(pooled, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunTrace(private, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Stats.Reused != 0 {
		t.Fatalf("private baseline reused VMs: %+v", rr.Stats)
	}
	if rp.Stats.Reused == 0 {
		t.Fatalf("pooled run never reused a VM: %+v", rp.Stats)
	}
	if rp.Stats.BilledTotal >= rr.Stats.BilledTotal {
		t.Fatalf("shared pool did not lower billed cost: pooled %v >= private %v",
			rp.Stats.BilledTotal, rr.Stats.BilledTotal)
	}
}

// TestAdmission covers the fair-share rejections: concurrent-workflow
// cap, VM cap, exhausted tenant budget.
func TestAdmission(t *testing.T) {
	p := testPlatform(3600)

	t.Run("queue cap", func(t *testing.T) {
		subs := twoChainSubs(t, "a", "a", 0) // both arrive at t=0
		subs[0].Tenant.MaxQueued = 1
		subs[1].Tenant.MaxQueued = 1
		res, err := RunSubmissions(Config{Platform: p, Policy: testPolicy()}, subs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcomes[0].State != StateDone || res.Outcomes[1].State != StateRejected {
			t.Fatalf("outcomes: %+v / %+v", res.Outcomes[0], res.Outcomes[1])
		}
		if !strings.Contains(res.Outcomes[1].Reason, "concurrent-workflow cap") {
			t.Fatalf("reason: %q", res.Outcomes[1].Reason)
		}
	})

	t.Run("vm cap", func(t *testing.T) {
		subs := twoChainSubs(t, "a", "a", 0)
		subs[0].Tenant.MaxVMs = 1
		subs[1].Tenant.MaxVMs = 1
		res, err := RunSubmissions(Config{Platform: p, Policy: testPolicy()}, subs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcomes[1].State != StateRejected || !strings.Contains(res.Outcomes[1].Reason, "VM cap") {
			t.Fatalf("outcome: %+v", res.Outcomes[1])
		}
	})

	t.Run("budget exhausted", func(t *testing.T) {
		subs := twoChainSubs(t, "a", "a", 1e6) // second arrives after first settles
		subs[0].Tenant.Budget = 1e-9
		subs[1].Tenant.Budget = 1e-9
		res, err := RunSubmissions(Config{Platform: p, Policy: testPolicy()}, subs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcomes[1].State != StateRejected || !strings.Contains(res.Outcomes[1].Reason, "budget exhausted") {
			t.Fatalf("outcome: %+v", res.Outcomes[1])
		}
	})
}

// TestEnqueueValidation classifies spec defects: scalar-domain
// violations as *ValidationError, unusable specs as *SemanticError.
func TestEnqueueValidation(t *testing.T) {
	w, err := wfgen.Generate(wfgen.Chain, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(Config{Platform: testPlatform(3600)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	good := Submission{Tenant: TenantSpec{ID: "t"}, Workflow: w, Algorithm: "heft"}

	cases := []struct {
		name       string
		mutate     func(*Submission)
		wantField  string // non-empty → *ValidationError with this field
		wantSemErr bool
	}{
		{"nan budget", func(s *Submission) { s.Budget = math.NaN() }, "budget", false},
		{"inf budget", func(s *Submission) { s.Budget = math.Inf(1) }, "budget", false},
		{"negative budget", func(s *Submission) { s.Budget = -1 }, "budget", false},
		{"nan tenant budget", func(s *Submission) { s.Tenant.Budget = math.NaN() }, "tenant.budget", false},
		{"missing tenant id", func(s *Submission) { s.Tenant.ID = "" }, "tenant.id", false},
		{"negative arrival", func(s *Submission) { s.At = -5 }, "at", false},
		{"bad weights length", func(s *Submission) { s.Weights = []float64{1} }, "weights", false},
		{"unknown algorithm", func(s *Submission) { s.Algorithm = "nope" }, "", true},
		{"missing workflow", func(s *Submission) { s.Workflow = nil }, "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sub := good
			tc.mutate(&sub)
			_, err := pl.Enqueue(ctx, sub)
			if err == nil {
				t.Fatal("no error")
			}
			var ve *ValidationError
			var se *SemanticError
			switch {
			case tc.wantField != "":
				if !errors.As(err, &ve) || ve.Field != tc.wantField {
					t.Fatalf("want ValidationError on %q, got %v", tc.wantField, err)
				}
			case tc.wantSemErr:
				if !errors.As(err, &se) {
					t.Fatalf("want SemanticError, got %v", err)
				}
			}
		})
	}

	// Conflicting re-registration of a tenant is semantic.
	if _, err := pl.Enqueue(ctx, good); err != nil {
		t.Fatal(err)
	}
	conflict := good
	conflict.Tenant.MaxVMs = 3
	var se *SemanticError
	if _, err := pl.Enqueue(ctx, conflict); !errors.As(err, &se) {
		t.Fatalf("conflicting tenant limits: want SemanticError, got %v", err)
	}
}

// TestTraceSpecValidation mirrors the sweep validation style:
// per-field 400-class errors and semantic 422-class errors.
func TestTraceSpecValidation(t *testing.T) {
	base := testTrace()
	t.Run("zero rate", func(t *testing.T) {
		spec := base
		spec.Tenants = append([]TenantTraffic(nil), base.Tenants...)
		spec.Tenants[1].Rate = 0
		var ve *ValidationError
		if err := spec.Validate(); !errors.As(err, &ve) || ve.Field != "tenants[1].rate" {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("nan tenant budget", func(t *testing.T) {
		spec := base
		spec.Tenants = append([]TenantTraffic(nil), base.Tenants...)
		spec.Tenants[0].Tenant.Budget = math.Inf(1)
		var ve *ValidationError
		if err := spec.Validate(); !errors.As(err, &ve) || ve.Field != "tenants[0].tenant.budget" {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("duplicate tenant ids", func(t *testing.T) {
		spec := base
		spec.Tenants = append([]TenantTraffic(nil), base.Tenants...)
		spec.Tenants[1].Tenant.ID = spec.Tenants[0].Tenant.ID
		var se *SemanticError
		if err := spec.Validate(); !errors.As(err, &se) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("unknown family", func(t *testing.T) {
		spec := base
		spec.Tenants = append([]TenantTraffic(nil), base.Tenants...)
		spec.Tenants[0].WorkflowType = "spiral"
		var se *SemanticError
		if err := spec.Validate(); !errors.As(err, &se) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("valid", func(t *testing.T) {
		if err := base.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestServiceConcurrentSubmits exercises the locked front under the
// race detector: concurrent submitters, consistent ledgers.
func TestServiceConcurrentSubmits(t *testing.T) {
	svc, err := NewService(Config{Platform: testPlatform(3600), Policy: testPolicy(), TimeToShutdown: 360})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	done := make(chan *Outcome, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			w, err := wfgen.Generate(wfgen.Chain, 6, uint64(i))
			if err != nil {
				t.Error(err)
				done <- nil
				return
			}
			o, err := svc.Submit(context.Background(), Submission{
				Tenant:    TenantSpec{ID: []string{"a", "b"}[i%2]},
				Workflow:  w,
				Algorithm: "heft",
			})
			if err != nil {
				t.Error(err)
			}
			done <- o
		}(i)
	}
	completed := 0
	for i := 0; i < n; i++ {
		if o := <-done; o != nil && o.State == StateDone {
			completed++
		}
	}
	if completed != n {
		t.Fatalf("completed %d of %d submissions", completed, n)
	}
	st := svc.Stats()
	if st.Completed != n || st.ActiveVMs != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	views := svc.Tenants()
	if len(views) != 2 {
		t.Fatalf("tenants: %+v", views)
	}
	var billed float64
	for _, v := range views {
		billed += v.Billed
	}
	if math.Abs(billed-st.BilledTotal) > 1e-9 {
		t.Fatalf("tenant billed sum %v != pool total %v", billed, st.BilledTotal)
	}
}
