// Package pool implements the multi-tenant online scheduling service:
// a continuously-running executor that accepts a stream of workflow
// submissions from many tenants and schedules them onto a shared VM
// pool, all inside one deterministic event loop (internal/evloop).
//
// The pool exploits the billing-quantum cost model (Platform.
// BillingQuantum, Equation (1) rounded up to whole billing periods):
// when a workflow settles, its VMs are not thrown away — each one has
// paid through the end of its current billing period, so the pool
// parks it idle and leases it to the next submission of any tenant
// that needs the category. A leased VM skips the boot delay and the
// setup fee and is billed only for lifetime *extensions* past the
// already-paid periods (platform.ExtensionCost). An idle VM is
// deprovisioned when the time to its next billing boundary drops
// below the configurable TimeToShutdown threshold — the
// time_to_shutdown_vm idiom of billing-period-aware cloud
// simulators — so a machine nobody claimed never silently rolls into
// a new paid period.
//
// Every event is dispatched in (virtual time, submission order):
// submissions, task lifecycle events of the hosted executions
// (internal/online's executor, hosted verbatim through
// online.Hosted), billing-boundary ticks, and deprovision timers.
// Determinism is load-bearing: a fixed seed and a fixed submission
// trace reproduce a byte-identical decision sequence, and a single
// submission on an empty pool is bit-identical to online.Execute —
// both pinned by property tests.
//
// Tenancy: every provision, extension and billing boundary is charged
// to the submitting tenant's budget via the executor's existing
// budget guard; per-tenant live accounting, fair-share admission
// (caps on concurrent workflows and VMs per tenant) and rejection
// outcomes surface through internal/server as POST /v1/submit,
// GET /v1/tenants and pool/tenant metrics.
package pool

import (
	"context"
	"fmt"
	"math"

	"budgetwf/internal/evloop"
	"budgetwf/internal/obs"
	"budgetwf/internal/online"
	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/sched"
	"budgetwf/internal/sim"
	"budgetwf/internal/wf"
)

// ValidationError is a scalar-domain violation in a spec field — a
// NaN budget, a zero-rate arrival spec, a negative cap. The HTTP
// layer maps it to a per-field 400.
type ValidationError struct {
	Field string
	Msg   string
}

func (e *ValidationError) Error() string { return e.Field + ": " + e.Msg }

// SemanticError is a well-formed but unusable spec — an unknown
// algorithm, a cyclic workflow, a tenant re-registered with
// conflicting limits. The HTTP layer maps it to a 422.
type SemanticError struct {
	Msg string
}

func (e *SemanticError) Error() string { return e.Msg }

// Config parameterizes a Pool. The zero value is usable.
type Config struct {
	// Platform is the shared platform every submission executes on;
	// default platform.Default(). Its BillingQuantum is what makes
	// reuse worthwhile: with continuous billing (quantum 0) a released
	// VM has no paid tail, so nothing ever idles and the pool
	// degenerates to per-workflow private pools.
	Platform *platform.Platform
	// TimeToShutdown is the idle-VM release threshold, in virtual
	// seconds: an idle VM is deprovisioned as soon as the time to its
	// next billing boundary drops below it. Default: 10% of the
	// billing quantum. Setting it ≥ the quantum disables reuse
	// entirely (every released VM is immediately below threshold),
	// which is the private-pool baseline the savings example compares
	// against.
	TimeToShutdown float64
	// DefaultMaxVMs and DefaultMaxQueued are the fair-share admission
	// caps applied to tenants that do not set their own: the maximum
	// concurrently provisioned VMs per tenant, and the maximum
	// concurrently queued-or-running workflows per tenant. Defaults 16
	// and 8.
	DefaultMaxVMs    int
	DefaultMaxQueued int
	// Policy carries the online controller knobs (TimeoutSigma,
	// GainFactor, MaxMigrations) applied to every hosted execution.
	// Budget, Faults and Span are per-submission and ignored here.
	Policy online.Policy
	// Seed drives the pool's weight sampling: submission i with nil
	// Weights realizes sim.SampleWeights under Split(i) of this seed.
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Platform == nil {
		c.Platform = platform.Default()
	}
	if err := c.Platform.Validate(); err != nil {
		return c, err
	}
	if c.Platform.DCBandwidth > 0 {
		return c, fmt.Errorf("pool: datacenter contention mode is not supported")
	}
	if math.IsNaN(c.TimeToShutdown) || math.IsInf(c.TimeToShutdown, 0) || c.TimeToShutdown < 0 {
		return c, &ValidationError{Field: "timeToShutdown", Msg: fmt.Sprintf("must be a finite non-negative duration, got %v", c.TimeToShutdown)}
	}
	if c.TimeToShutdown == 0 {
		c.TimeToShutdown = 0.1 * c.Platform.BillingQuantum
	}
	if c.DefaultMaxVMs <= 0 {
		c.DefaultMaxVMs = 16
	}
	if c.DefaultMaxQueued <= 0 {
		c.DefaultMaxQueued = 8
	}
	return c, nil
}

// Submission is one workflow arrival.
type Submission struct {
	// At is the virtual arrival instant; arrivals before the pool's
	// frontier are clamped to it.
	At float64
	// Tenant identifies and (on first sight) registers the submitting
	// tenant.
	Tenant TenantSpec
	// Workflow is the DAG to execute.
	Workflow *wf.Workflow
	// Algorithm names the planning algorithm (sched registry).
	Algorithm string
	// Budget is the per-workflow budget B_ini; 0 lifts the guard
	// (subject to the tenant-level budget, which still applies).
	Budget float64
	// Weights, when non-nil, fixes the realized task weights; nil
	// samples them deterministically from the pool seed and the
	// submission index.
	Weights []float64
	// Span, when non-nil, receives the submission's scheduling
	// lifecycle events (provision/reuse/release/deprovision decisions
	// and the executor's migration trace).
	Span *obs.Span
}

// Submission outcome states.
const (
	StateQueued   = "queued"
	StateRejected = "rejected"
	StateDone     = "done"
	StateFailed   = "failed"
)

// Outcome is the (mutable until settled) result of one submission.
type Outcome struct {
	SubID  int            `json:"subId"`
	Tenant string         `json:"tenant"`
	State  string         `json:"state"`
	Reason string         `json:"reason,omitempty"`
	Report *online.Report `json:"report,omitempty"`
	// FreshVMs and ReusedVMs count the execution's provisions by kind;
	// SavedInitCost is the setup fees reuse avoided; Charged is the
	// authoritative amount billed to the tenant at settlement.
	FreshVMs      int     `json:"freshVMs"`
	ReusedVMs     int     `json:"reusedVMs"`
	SavedInitCost float64 `json:"savedInitCost"`
	Charged       float64 `json:"charged"`
	ArrivedAt     float64 `json:"arrivedAt"`
	SettledAt     float64 `json:"settledAt"`
}

// Decision is one entry of the pool's scheduling-decision log: the
// sequence the determinism property test pins byte-for-byte.
type Decision struct {
	At     float64
	Kind   string // submit, reject, provision, reuse, billing, release, deprovision, settle, abort
	Tenant string
	Sub    int // submission ID, -1 when not submission-scoped
	VM     int // pool VM ID, -1 when not VM-scoped
	Cat    int // platform category, -1 when not VM-scoped
	Amount float64
	Note   string
}

// String renders the decision canonically (used by the property test).
func (d Decision) String() string {
	return fmt.Sprintf("%v %s tenant=%s sub=%d vm=%d cat=%d amount=%v %s",
		d.At, d.Kind, d.Tenant, d.Sub, d.VM, d.Cat, d.Amount, d.Note)
}

// pevKind enumerates the pool's event kinds.
type pevKind int

const (
	pevSubmit pevKind = iota
	pevExec
	pevBilling
	pevDeprovision
)

// pev is one pool-loop event.
type pev struct {
	at    float64
	seq   int
	kind  pevKind
	sub   *submission
	ev    online.Ev // pevExec
	vm    *poolVM   // pevBilling, pevDeprovision
	epoch int       // staleness guard for VM timers
}

func (e *pev) When() float64  { return e.at }
func (e *pev) EvSeq() int     { return e.seq }
func (e *pev) SetEvSeq(s int) { e.seq = s }

// poolVM is one shared-pool VM, across all the executions it serves.
type poolVM struct {
	id  int
	cat int
	// tenant is the current billing owner: the tenant whose execution
	// provisioned or last leased it. The owner pays extensions while
	// the VM is held and eats the idle waste of its paid tail.
	tenant string
	// boot is the absolute instant the VM's original boot completed:
	// all billing ages are measured from it.
	boot float64
	// paidUntil is the absolute end of the last billing period the
	// owner's settlement paid for (maintained while idle).
	paidUntil float64
	idleFrom  float64
	idle      bool
	gone      bool
	// epoch invalidates in-flight billing/deprovision timers whenever
	// the VM changes hands (lease, release, deprovision).
	epoch  int
	holder *submission
	execVM int
}

// submission is the pool-side record of one arrival.
type submission struct {
	id       int
	tenant   *tenant
	w        *wf.Workflow
	alg      sched.Name
	budget   float64
	weights  []float64
	schedule *plan.Schedule
	span     *obs.Span

	offset       float64 // arrival instant: execution-relative 0
	hosted       *online.Hosted
	vmMap        map[int]*poolVM // executor VM index → pool VM
	pendingLease *poolVM
	liveAccrued  float64
	outcome      *Outcome
}

// Pool is the multi-tenant shared-pool scheduler. Not safe for
// concurrent use — Service adds the locking the HTTP layer needs.
type Pool struct {
	cfg  Config
	plat *platform.Platform
	seed *rng.RNG

	loop    evloop.Loop[*pev]
	subs    []*submission
	vms     []*poolVM
	tenants map[string]*tenant
	order   []string // tenant registration order, for deterministic listing

	decisions []Decision

	provisioned   int
	reused        int
	deprovisioned int
	extensions    int
	savedInit     float64
	idleWaste     float64
	billedTotal   float64
}

// New builds an empty pool.
func New(cfg Config) (*Pool, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Pool{
		cfg:     cfg,
		plat:    cfg.Platform,
		seed:    rng.New(cfg.Seed),
		tenants: make(map[string]*tenant),
	}, nil
}

// Now returns the pool's virtual-time frontier.
func (p *Pool) Now() float64 { return p.loop.Now() }

// Decisions returns the scheduling-decision log so far.
func (p *Pool) Decisions() []Decision { return p.decisions }

func (p *Pool) decide(d Decision) {
	d.At = p.loop.Now()
	p.decisions = append(p.decisions, d)
}

// Enqueue validates and plans a submission and schedules its arrival.
// Validation and planning errors are returned immediately (and
// classified: *ValidationError for scalar-domain violations,
// *SemanticError for unusable specs); admission verdicts — fair-share
// caps, exhausted tenant budgets — are Outcome rejections decided at
// the arrival instant, not errors.
func (p *Pool) Enqueue(ctx context.Context, sub Submission) (*Outcome, error) {
	if sub.Workflow == nil {
		return nil, &SemanticError{Msg: "missing workflow"}
	}
	if math.IsNaN(sub.At) || math.IsInf(sub.At, 0) || sub.At < 0 {
		return nil, &ValidationError{Field: "at", Msg: fmt.Sprintf("must be a finite non-negative instant, got %v", sub.At)}
	}
	if err := checkBudgetField("budget", sub.Budget); err != nil {
		return nil, err
	}
	if sub.Weights != nil {
		if len(sub.Weights) != sub.Workflow.NumTasks() {
			return nil, &ValidationError{Field: "weights", Msg: fmt.Sprintf("%d weights for %d tasks", len(sub.Weights), sub.Workflow.NumTasks())}
		}
		for i, wt := range sub.Weights {
			if wt <= 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
				return nil, &ValidationError{Field: "weights", Msg: fmt.Sprintf("task %d has invalid weight %v", i, wt)}
			}
		}
	}
	ten, err := p.registerTenant(sub.Tenant)
	if err != nil {
		return nil, err
	}
	alg, err := sched.ByName(sched.Name(sub.Algorithm))
	if err != nil {
		return nil, &SemanticError{Msg: err.Error()}
	}
	// The pool plans directly — never through the server's plan cache:
	// a cached plan's estimates assume a private pool of fresh VMs,
	// and the shared pool's available-VM set differs per arrival (see
	// the cache-bypass test in internal/server).
	schedule, err := sched.PlanContext(ctx, alg.Name, sub.Workflow, p.plat, sub.Budget)
	if err != nil {
		return nil, &SemanticError{Msg: err.Error()}
	}
	id := len(p.subs)
	weights := sub.Weights
	if weights == nil {
		weights = sim.SampleWeights(sub.Workflow, p.seed.Split(uint64(id)))
	}
	at := sub.At
	if at < p.loop.Now() {
		at = p.loop.Now()
	}
	s := &submission{
		id: id, tenant: ten, w: sub.Workflow, alg: alg.Name,
		budget: sub.Budget, weights: weights, schedule: schedule,
		span:  sub.Span,
		vmMap: make(map[int]*poolVM),
		outcome: &Outcome{
			SubID: id, Tenant: ten.id, State: StateQueued, ArrivedAt: at,
		},
	}
	p.subs = append(p.subs, s)
	ten.submissions++
	p.loop.Push(&pev{at: at, kind: pevSubmit, sub: s})
	return s.outcome, nil
}

// step dispatches one event; ok is false when the loop is empty.
func (p *Pool) step() (ok bool, err error) {
	ev, ok := p.loop.Pop()
	if !ok {
		return false, nil
	}
	if err := p.loop.Advance(ev.at); err != nil {
		return false, err
	}
	p.dispatch(ev)
	return true, nil
}

// Run drains the loop completely: every enqueued submission reaches a
// terminal state (settled, rejected or failed) and every idle VM's
// deprovision timer fires.
func (p *Pool) Run() error {
	for {
		ok, err := p.step()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	p.failUnsettled()
	return nil
}

// RunUntil drains events in order until the given outcome reaches a
// terminal state. Events scheduled past that instant stay queued for
// the next drain, so interleaved service-mode submissions observe the
// same loop a batch run would.
func (p *Pool) RunUntil(o *Outcome) error {
	for o.State == StateQueued {
		ok, err := p.step()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	if o.State == StateQueued {
		s := p.subs[o.SubID]
		p.failSub(s, fmt.Errorf("pool: deadlock: submission %d stalled with no pending events", o.SubID))
	}
	return nil
}

// failUnsettled fails any submission still live when the loop drains
// dry (an executor deadlock; impossible for well-formed schedules).
func (p *Pool) failUnsettled() {
	for _, s := range p.subs {
		if s.outcome.State == StateQueued {
			p.failSub(s, fmt.Errorf("pool: deadlock: submission %d stalled with no pending events", s.id))
		}
	}
}

func (p *Pool) dispatch(ev *pev) {
	switch ev.kind {
	case pevSubmit:
		p.admit(ev.sub)
	case pevExec:
		s := ev.sub
		if s.hosted == nil || s.outcome.State != StateQueued {
			return // the submission already failed or was rejected
		}
		if err := s.hosted.Step(ev.ev); err != nil {
			p.failSub(s, err)
			return
		}
		if s.hosted.Settled() {
			p.settle(s)
		}
	case pevBilling:
		p.billingBoundary(ev)
	case pevDeprovision:
		pv := ev.vm
		if pv.gone || !pv.idle || ev.epoch != pv.epoch {
			return // leased or already gone; the timer is stale
		}
		p.deprovision(pv)
	}
}

// admit applies fair-share admission at the arrival instant and, when
// the submission passes, starts its hosted execution.
func (p *Pool) admit(s *submission) {
	ten := s.tenant
	if ten.active >= ten.maxQueued {
		p.reject(s, fmt.Sprintf("tenant %s at its concurrent-workflow cap (%d)", ten.id, ten.maxQueued))
		return
	}
	if ten.budget > 0 && ten.billed >= ten.budget {
		p.reject(s, fmt.Sprintf("tenant %s budget exhausted (%.6g of %.6g spent)", ten.id, ten.billed, ten.budget))
		return
	}
	if need := s.schedule.NumVMs(); ten.activeVMs+need > ten.maxVMs {
		p.reject(s, fmt.Sprintf("tenant %s would exceed its VM cap (%d active + %d planned > %d)", ten.id, ten.activeVMs, need, ten.maxVMs))
		return
	}
	pol := p.cfg.Policy
	pol.Faults = nil
	pol.Span = s.span
	pol.Budget = p.effectiveBudget(s)
	h, err := online.NewHosted(s.w, p.plat, s.schedule, s.weights, pol, online.HostHooks{
		Emit: func(at float64, ev online.Ev) {
			p.loop.Push(&pev{at: at + s.offset, kind: pevExec, sub: s, ev: ev})
		},
		Acquire: func(cat int, at float64) (online.Lease, bool) {
			return p.acquireFor(s, cat, at+s.offset)
		},
		OnProvision: func(at float64, vm, cat int, leased bool, bootDone float64) {
			p.onProvision(s, at, vm, cat, leased, bootDone)
		},
	})
	if err != nil {
		p.failSub(s, err)
		return
	}
	s.offset = p.loop.Now()
	s.hosted = h
	ten.active++
	p.decide(Decision{
		Kind: "submit", Tenant: ten.id, Sub: s.id, VM: -1, Cat: -1,
		Amount: s.budget,
		Note:   fmt.Sprintf("alg=%s tasks=%d plannedVMs=%d", s.alg, s.w.NumTasks(), s.schedule.NumVMs()),
	})
	if s.span != nil {
		s.span.Event("pool-admit", obs.Int("sub", s.id), obs.Str("tenant", ten.id),
			obs.Float("at", p.loop.Now()))
	}
	h.Start()
	if h.Settled() {
		p.settle(s)
	}
}

// effectiveBudget tightens the per-workflow budget by the tenant's
// remaining pot, so the executor's budget guard protects both.
func (p *Pool) effectiveBudget(s *submission) float64 {
	eff := s.budget
	if ten := s.tenant; ten.budget > 0 {
		remaining := ten.budget - ten.billed
		if eff == 0 || remaining < eff {
			eff = remaining
		}
	}
	return eff
}

func (p *Pool) reject(s *submission, reason string) {
	s.outcome.State = StateRejected
	s.outcome.Reason = reason
	s.tenant.rejected++
	p.decide(Decision{Kind: "reject", Tenant: s.tenant.id, Sub: s.id, VM: -1, Cat: -1, Note: reason})
	if s.span != nil {
		s.span.Event("pool-reject", obs.Int("sub", s.id), obs.Str("reason", reason))
	}
}

func (p *Pool) failSub(s *submission, err error) {
	s.outcome.State = StateFailed
	s.outcome.Reason = err.Error()
	s.outcome.SettledAt = p.loop.Now()
	ten := s.tenant
	if s.hosted != nil {
		ten.active--
	}
	ten.failed++
	// Force-release the submission's VMs: nothing returns to the idle
	// set from a failed execution (its billing state is unknown).
	for _, pv := range s.vmMap {
		if !pv.gone {
			pv.gone = true
			pv.idle = false
			pv.epoch++
			pv.holder = nil
			ten.activeVMs--
			p.deprovisioned++
		}
	}
	p.decide(Decision{Kind: "abort", Tenant: ten.id, Sub: s.id, VM: -1, Cat: -1, Note: err.Error()})
}

// acquireFor serves the hosted executor's booking hook: lease the idle
// VM of the requested category with the most remaining paid time
// (ties to the lowest VM id, deterministically).
func (p *Pool) acquireFor(s *submission, cat int, now float64) (online.Lease, bool) {
	var best *poolVM
	for _, pv := range p.vms {
		if pv.idle && !pv.gone && pv.cat == cat {
			if best == nil || pv.paidUntil > best.paidUntil {
				best = pv
			}
		}
	}
	if best == nil {
		return online.Lease{}, false
	}
	best.idle = false
	best.epoch++
	// The idle gap [idleFrom, now] was paid by the previous owner and
	// produced nothing: their waste, not the new holder's.
	if gap := now - best.idleFrom; gap > 0 {
		p.tenants[best.tenant].idleWaste += gap
		p.idleWaste += gap
	}
	prev := best.tenant
	best.tenant = s.tenant.id
	best.holder = s
	s.pendingLease = best
	p.decide(Decision{
		Kind: "reuse", Tenant: s.tenant.id, Sub: s.id, VM: best.id, Cat: cat,
		Amount: p.plat.Categories[cat].InitCost,
		Note:   fmt.Sprintf("from=%s age=%v paidUntil=%v", prev, now-best.boot, best.paidUntil),
	})
	if s.span != nil {
		s.span.Event("pool-reuse", obs.Int("vm", best.id), obs.Int("cat", cat),
			obs.Str("from", prev), obs.Float("at", now))
	}
	return online.Lease{Age: now - best.boot}, true
}

// onProvision observes every booking of a hosted execution, fresh or
// leased, and wires the pool-side accounting.
func (p *Pool) onProvision(s *submission, at float64, vmIdx, cat int, leased bool, bootDone float64) {
	ten := s.tenant
	ten.activeVMs++
	if leased {
		pv := s.pendingLease
		s.pendingLease = nil
		pv.execVM = vmIdx
		s.vmMap[vmIdx] = pv
		ten.reusedVMs++
		s.outcome.ReusedVMs++
		saved := p.plat.Categories[cat].InitCost
		ten.savedInit += saved
		s.outcome.SavedInitCost += saved
		p.savedInit += saved
		p.reused++
		p.scheduleBilling(pv)
		return
	}
	pv := &poolVM{
		id: len(p.vms), cat: cat, tenant: ten.id,
		boot: bootDone + s.offset, holder: s, execVM: vmIdx,
	}
	p.vms = append(p.vms, pv)
	s.vmMap[vmIdx] = pv
	ten.freshVMs++
	s.outcome.FreshVMs++
	p.provisioned++
	// Live estimate: setup fee plus the first billing unit; settled
	// authoritatively when the execution's Report lands.
	est := p.plat.Categories[cat].InitCost
	if q := p.plat.BillingQuantum; q > 0 {
		est += q * p.plat.Categories[cat].CostPerSec
	}
	ten.liveSpend += est
	s.liveAccrued += est
	p.decide(Decision{
		Kind: "provision", Tenant: ten.id, Sub: s.id, VM: pv.id, Cat: cat,
		Amount: est, Note: fmt.Sprintf("bootDone=%v", pv.boot),
	})
	if s.span != nil {
		s.span.Event("pool-provision", obs.Int("vm", pv.id), obs.Int("cat", cat),
			obs.Float("at", at+s.offset))
	}
	p.scheduleBilling(pv)
}

// scheduleBilling arms the VM's next billing-boundary tick (the live
// per-tenant spend gauge; settlement remains authoritative).
func (p *Pool) scheduleBilling(pv *poolVM) {
	q := p.plat.BillingQuantum
	if q <= 0 {
		return
	}
	now := p.loop.Now()
	next := pv.boot + q
	if now > pv.boot {
		periods := math.Floor((now-pv.boot)/q) + 1
		next = pv.boot + periods*q
	}
	p.loop.Push(&pev{at: next, kind: pevBilling, vm: pv, epoch: pv.epoch})
}

// billingBoundary charges one billing unit of live spend to the VM's
// current owner and re-arms the tick while the VM is held.
func (p *Pool) billingBoundary(ev *pev) {
	pv := ev.vm
	if pv.gone || pv.idle || ev.epoch != pv.epoch || pv.holder == nil {
		return
	}
	q := p.plat.BillingQuantum
	amt := q * p.plat.Categories[pv.cat].CostPerSec
	ten := p.tenants[pv.tenant]
	ten.liveSpend += amt
	pv.holder.liveAccrued += amt
	p.extensions++
	p.decide(Decision{
		Kind: "billing", Tenant: pv.tenant, Sub: pv.holder.id, VM: pv.id, Cat: pv.cat,
		Amount: amt,
	})
	p.loop.Push(&pev{at: ev.at + q, kind: pevBilling, vm: pv, epoch: pv.epoch})
}

// settle finishes a hosted execution: collect its Report, charge the
// tenant the authoritative amount, and return its VMs to the pool —
// idle within their paid billing period, deprovisioned when the time
// to the next boundary is already below TimeToShutdown.
func (p *Pool) settle(s *submission) {
	rep := s.hosted.Finish()
	now := p.loop.Now()
	ten := s.tenant
	for _, rel := range s.hosted.Releases() {
		pv := s.vmMap[rel.VM]
		if pv == nil || pv.gone {
			continue
		}
		pv.epoch++ // kill the held-VM billing chain
		pv.holder = nil
		pv.paidUntil = pv.boot + p.plat.PaidHorizon(rel.AgeAtEnd)
		pv.idleFrom = rel.End + s.offset
		ten.activeVMs--
		remaining := pv.paidUntil - now
		if p.plat.BillingQuantum <= 0 || remaining <= p.cfg.TimeToShutdown {
			p.deprovision(pv)
			continue
		}
		pv.idle = true
		p.decide(Decision{
			Kind: "release", Tenant: pv.tenant, Sub: s.id, VM: pv.id, Cat: pv.cat,
			Amount: remaining, Note: fmt.Sprintf("paidUntil=%v", pv.paidUntil),
		})
		p.loop.Push(&pev{at: pv.paidUntil - p.cfg.TimeToShutdown, kind: pevDeprovision, vm: pv, epoch: pv.epoch})
	}
	ten.active--
	ten.billed += rep.TotalCost
	ten.liveSpend -= s.liveAccrued
	if ten.liveSpend < 0 {
		ten.liveSpend = 0
	}
	ten.completed++
	p.billedTotal += rep.TotalCost
	o := s.outcome
	o.State = StateDone
	o.Report = rep
	o.Charged = rep.TotalCost
	o.SettledAt = now
	p.decide(Decision{
		Kind: "settle", Tenant: ten.id, Sub: s.id, VM: -1, Cat: -1,
		Amount: rep.TotalCost,
		Note: fmt.Sprintf("makespan=%v vms=%d reused=%d completed=%v",
			rep.Makespan, rep.NumVMs, o.ReusedVMs, rep.Completed),
	})
	if s.span != nil {
		s.span.Set(obs.Float("charged", rep.TotalCost), obs.Int("reusedVMs", o.ReusedVMs),
			obs.Int("freshVMs", o.FreshVMs), obs.Float("savedInitCost", o.SavedInitCost))
	}
}

// deprovision releases a VM for good; the unused remainder of its paid
// tail is idle waste attributed to the tenant that paid for it.
func (p *Pool) deprovision(pv *poolVM) {
	waste := pv.paidUntil - pv.idleFrom
	if waste < 0 {
		waste = 0
	}
	if pv.idle {
		// The stretch already elapsed idle is accounted here; the
		// remainder of the paid tail is forfeited on shutdown.
		waste = pv.paidUntil - p.loop.Now()
		if gap := p.loop.Now() - pv.idleFrom; gap > 0 {
			p.tenants[pv.tenant].idleWaste += gap
			p.idleWaste += gap
		}
		if waste < 0 {
			waste = 0
		}
	}
	pv.gone = true
	pv.idle = false
	pv.epoch++
	pv.holder = nil
	p.tenants[pv.tenant].idleWaste += waste
	p.idleWaste += waste
	p.deprovisioned++
	p.decide(Decision{
		Kind: "deprovision", Tenant: pv.tenant, Sub: -1, VM: pv.id, Cat: pv.cat,
		Amount: waste, Note: fmt.Sprintf("paidUntil=%v", pv.paidUntil),
	})
}

// checkBudgetField rejects budgets outside the field's domain.
func checkBudgetField(field string, b float64) error {
	if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		return &ValidationError{Field: field, Msg: fmt.Sprintf("must be a finite non-negative amount, got %v", b)}
	}
	return nil
}
