package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	w, s, res := ganttFixture(t)
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf, w, s); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var boots, stages, computes, metas int
	for _, ev := range doc.TraceEvents {
		switch ev["cat"] {
		case "vm":
			boots++
		case "staging":
			stages++
		case "compute":
			computes++
		}
		if ev["ph"] == "M" {
			metas++
		}
	}
	if metas != 2 {
		t.Errorf("%d thread metadata events, want one per VM", metas)
	}
	if boots != 2 {
		t.Errorf("%d boot events, want 2", boots)
	}
	if computes != 2 {
		t.Errorf("%d compute events, want 2", computes)
	}
	// Task a stages its external input; task b stages the cross-VM
	// edge: both have staging spans.
	if stages != 2 {
		t.Errorf("%d staging events, want 2", stages)
	}
	// Durations must be non-negative and timestamps within the span.
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			continue
		}
		ts := ev["ts"].(float64)
		if ts < 0 || ts > res.LastEvent*1e6 {
			t.Errorf("event %v out of range", ev["name"])
		}
	}
}
