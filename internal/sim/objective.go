package sim

// Objective is the paper's bi-criteria goal (Equation (3)): finish
// within the deadline D while spending at most the budget B. A zero
// field disables that criterion.
type Objective struct {
	Deadline float64
	Budget   float64
}

// SatisfiedBy reports whether a realized execution meets the
// objective.
func (o Objective) SatisfiedBy(r *Result) bool {
	if o.Deadline > 0 && r.Makespan > o.Deadline {
		return false
	}
	if o.Budget > 0 && r.TotalCost > o.Budget {
		return false
	}
	return true
}

// ObjectiveStats aggregates objective satisfaction over repeated
// executions.
type ObjectiveStats struct {
	// Runs is the number of executions measured.
	Runs int
	// DeadlineMet / BudgetMet / BothMet count executions satisfying
	// each criterion (and their conjunction).
	DeadlineMet int
	BudgetMet   int
	BothMet     int
}

// Observe folds one execution into the statistics.
func (s *ObjectiveStats) Observe(o Objective, r *Result) {
	s.Runs++
	dOK := o.Deadline <= 0 || r.Makespan <= o.Deadline
	bOK := o.Budget <= 0 || r.TotalCost <= o.Budget
	if dOK {
		s.DeadlineMet++
	}
	if bOK {
		s.BudgetMet++
	}
	if dOK && bOK {
		s.BothMet++
	}
}

// Frac returns n/Runs, or 0 for an empty sample.
func (s *ObjectiveStats) Frac(n int) float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(n) / float64(s.Runs)
}
