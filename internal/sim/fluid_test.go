package sim

import (
	"testing"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
)

// fluidPlatform caps the aggregate datacenter bandwidth at one link's
// worth, so two concurrent transfers halve each other's rate.
func fluidPlatform() *platform.Platform {
	p := testPlatform()
	p.DCBandwidth = 10
	return p
}

func TestFluidSingleFlowMatchesUnbounded(t *testing.T) {
	// With one flow at a time, a DC cap equal to the link bandwidth
	// must not change anything.
	w := wf.New("one")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	if err := w.SetExternalIO(a, 20, 10); err != nil {
		t.Fatal(err)
	}
	s := singleVMSchedule(w, a)

	unbounded, err := Run(w, testPlatform(), s, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Run(w, fluidPlatform(), s, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(unbounded.Makespan, capped.Makespan) {
		t.Errorf("makespan %v (unbounded) vs %v (capped)", unbounded.Makespan, capped.Makespan)
	}
}

func TestFluidContentionHalvesRates(t *testing.T) {
	// Two independent tasks on two VMs, each staging 100 B of external
	// input at t=5 (after boot). Unbounded: staging takes 10 s each in
	// parallel. With the DC capped at one link, the two flows share:
	// each proceeds at rate 5 → staging takes 20 s.
	w := wf.New("two")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	b := w.AddTask("b", stoch.Dist{Mean: 100})
	if err := w.SetExternalIO(a, 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.SetExternalIO(b, 100, 0); err != nil {
		t.Fatal(err)
	}
	s := plan.New(2)
	s.ListT = []wf.TaskID{a, b}
	s.Assign(a, s.AddVM(0))
	s.Assign(b, s.AddVM(0))

	unbounded, err := Run(w, testPlatform(), s, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	// boot →5, stage →15, compute →25.
	if !almostEq(unbounded.Makespan, 25) {
		t.Fatalf("unbounded makespan %v", unbounded.Makespan)
	}
	capped, err := Run(w, fluidPlatform(), s, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	// boot →5, both stagings share the cap: done at 25, compute →35.
	if !almostEq(capped.Makespan, 35) {
		t.Errorf("capped makespan %v, want 35", capped.Makespan)
	}
}

func TestFluidFlowFinishFreesBandwidth(t *testing.T) {
	// Unequal stagings: 50 B and 150 B starting together under a 10 B/s
	// cap. Shared at 5 B/s each; the small one finishes at t₀+10 having
	// moved 50 B, then the big one speeds up to 10 B/s for its
	// remaining 100 B → finishes at t₀+20 (instead of t₀+30 if the
	// share never rebalanced).
	w := wf.New("uneq")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	b := w.AddTask("b", stoch.Dist{Mean: 100})
	if err := w.SetExternalIO(a, 50, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.SetExternalIO(b, 150, 0); err != nil {
		t.Fatal(err)
	}
	s := plan.New(2)
	s.ListT = []wf.TaskID{a, b}
	s.Assign(a, s.AddVM(0))
	s.Assign(b, s.AddVM(0))
	res, err := Run(w, fluidPlatform(), s, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Both boot 0→5. a stages 5→15 (5 B/s), computes 15→25.
	// b stages 5→25 (100 B left at 15, then full rate), computes 25→35.
	if !almostEq(res.Tasks[a].ComputeStart, 15) {
		t.Errorf("a compute start %v", res.Tasks[a].ComputeStart)
	}
	if !almostEq(res.Tasks[b].ComputeStart, 25) {
		t.Errorf("b compute start %v, want 25", res.Tasks[b].ComputeStart)
	}
	if !almostEq(res.Makespan, 35) {
		t.Errorf("makespan %v", res.Makespan)
	}
}

func TestFluidNeverFasterThanUnbounded(t *testing.T) {
	// Sanity across a richer DAG: capping the DC can only slow things
	// down.
	w := wf.New("dag")
	var ids []wf.TaskID
	for i := 0; i < 6; i++ {
		id := w.AddTask("t", stoch.Dist{Mean: 50})
		if err := w.SetExternalIO(id, 80, 0); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	sink := w.AddTask("sink", stoch.Dist{Mean: 20})
	for _, id := range ids {
		w.MustAddEdge(id, sink, 60)
	}
	s := plan.New(7)
	s.ListT = append(append([]wf.TaskID(nil), ids...), sink)
	for _, id := range ids {
		s.Assign(id, s.AddVM(0))
	}
	s.Assign(sink, s.AddVM(0))
	weights := []float64{50, 50, 50, 50, 50, 50, 20}

	unbounded, err := Run(w, testPlatform(), s, weights)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Run(w, fluidPlatform(), s, weights)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Makespan < unbounded.Makespan-1e-9 {
		t.Errorf("contention sped things up: %v < %v", capped.Makespan, unbounded.Makespan)
	}
	if capped.Makespan <= unbounded.Makespan {
		t.Errorf("expected visible slowdown with 7 concurrent flows, got %v vs %v", capped.Makespan, unbounded.Makespan)
	}
}
