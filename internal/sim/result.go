// Package sim is the discrete-event simulator that plays the role
// SimDag/SimGrid plays in the paper (§V-A): it executes a schedule
// produced by internal/sched on the platform model of §III, with
// realized (possibly stochastic) task weights, and reports the actual
// makespan and cost under Equations (1) and (2).
//
// Execution semantics (matching the planner's Equation (7) exactly, so
// that a deterministic simulation reproduces the planner's estimates):
//
//   - every data exchange between VMs transits the datacenter;
//   - a VM is booked when the inputs of its first task are all at the
//     datacenter, boots for an uncharged t_boot, then serves its task
//     list in order;
//   - before computing a task, the VM stages in all input data not
//     already local (one flow of the cumulated size at the VM link
//     bandwidth), starting when the VM is idle and the data is at the
//     datacenter;
//   - output data for consumers on other VMs, and external outputs,
//     are uploaded to the datacenter as soon as the task completes;
//     uploads overlap both computation and staging (full duplex);
//   - a VM is released once its last upload reaches the datacenter.
//
// With Platform.DCBandwidth == 0 (the paper's assumption) every flow
// proceeds at the nominal VM link bandwidth and completion times are
// exact. With a finite DCBandwidth the engine switches to a fluid
// max-min fair-sharing model, which reproduces the LIGO saturation
// anomaly the paper reports (§V-B).
package sim

import (
	"fmt"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
)

// BlameKind says which constraint bound the start of a task's staging
// phase; the CG+ refinement uses it to walk the critical path.
type BlameKind int

// Blame kinds, from weakest to strongest structural meaning.
const (
	// BlameNone: the task started at time zero (entry task, first on
	// its VM, external inputs only).
	BlameNone BlameKind = iota
	// BlameVMBusy: the previous task on the same VM finished last.
	BlameVMBusy
	// BlameDataArrival: an input edge's arrival at the datacenter
	// finished last; Pred identifies the producing task.
	BlameDataArrival
	// BlameBoot: the VM's boot completed last (only possible for the
	// first task of a VM when boot outlasts data arrival, which cannot
	// happen under the booking rule, but the fluid mode keeps it for
	// completeness).
	BlameBoot
)

// Blame records the binding start constraint of one task.
type Blame struct {
	Kind BlameKind
	// Pred is the producing task for BlameDataArrival, or the previous
	// task on the VM for BlameVMBusy.
	Pred wf.TaskID
}

// TaskTimes holds the realized timeline of one task.
type TaskTimes struct {
	// StageStart is when input staging began (equals ComputeStart when
	// nothing had to be staged).
	StageStart float64
	// ComputeStart is when the processor began executing instructions.
	ComputeStart float64
	// Finish is when the computation completed.
	Finish float64
}

// VMUsage summarizes one VM's life and cost.
type VMUsage struct {
	// Cat is the platform category index.
	Cat int
	// Book is when the VM was requested (boot begins).
	Book float64
	// Start is H_start,v: end of boot, beginning of billing.
	Start float64
	// End is H_end,v: when the VM's last upload reached the datacenter.
	End float64
	// Cost is C_v per Equation (1).
	Cost float64
	// NumTasks is how many tasks ran on the VM.
	NumTasks int
	// Busy is the time spent staging inputs or computing; the billed
	// remainder (End − Start − Busy) is idle waiting — billed all the
	// same, which is why the planner charges lifetime extensions.
	Busy float64
}

// Utilization is the busy fraction of the VM's billed lifetime.
func (v VMUsage) Utilization() float64 {
	if span := v.End - v.Start; span > 0 {
		return v.Busy / span
	}
	return 0
}

// Result is the outcome of one simulated execution.
type Result struct {
	// Makespan is H_end,last − H_start,first.
	Makespan float64
	// TotalCost is C_wf = Σ C_v + C_DC.
	TotalCost float64
	// DCCost is C_DC per Equation (2).
	DCCost float64
	// XferCost is the inter-provider transfer surcharge on a market
	// platform (zero in the single-provider model).
	XferCost float64
	// VMs describes every provisioned VM.
	VMs []VMUsage
	// Tasks holds per-task realized times, indexed by TaskID.
	Tasks []TaskTimes
	// Blames holds per-task binding start constraints.
	Blames []Blame
	// FirstBook is H_start,first, LastEvent is H_end,last.
	FirstBook, LastEvent float64
}

// NumVMs returns the number of provisioned VMs.
func (r *Result) NumVMs() int { return len(r.VMs) }

// VMCost returns Σ C_v.
func (r *Result) VMCost() float64 {
	total := 0.0
	for _, v := range r.VMs {
		total += v.Cost
	}
	return total
}

// FleetUtilization returns the busy fraction of all billed VM time —
// how much of the invoice paid for actual staging/computation rather
// than idle waiting.
func (r *Result) FleetUtilization() float64 {
	busy, span := 0.0, 0.0
	for _, v := range r.VMs {
		busy += v.Busy
		span += v.End - v.Start
	}
	if span <= 0 {
		return 0
	}
	return busy / span
}

// WithinBudget reports whether the realized total cost respects b.
func (r *Result) WithinBudget(b float64) bool { return r.TotalCost <= b }

// CriticalPath walks the blame chain back from the task that finished
// last and returns the task IDs on the path, from the entry-side end
// to the final task. CG+ re-assigns tasks along this path.
func (r *Result) CriticalPath() []wf.TaskID {
	if len(r.Tasks) == 0 {
		return nil
	}
	last := 0
	for t := range r.Tasks {
		if r.Tasks[t].Finish > r.Tasks[last].Finish {
			last = t
		}
	}
	var rev []wf.TaskID
	cur := wf.TaskID(last)
	for steps := 0; steps <= len(r.Tasks); steps++ {
		rev = append(rev, cur)
		b := r.Blames[cur]
		if b.Kind == BlameVMBusy || b.Kind == BlameDataArrival {
			cur = b.Pred
			continue
		}
		break
	}
	// Reverse to entry-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Weights helpers ----------------------------------------------------

// ConservativeWeights returns w̄+σ for every task: the weights the
// planner assumes (used when re-simulating candidate schedules inside
// HEFTBUDG+, Algorithm 5's simulate()).
func ConservativeWeights(w *wf.Workflow) []float64 {
	out := make([]float64, w.NumTasks())
	for _, t := range w.Tasks() {
		out[t.ID] = t.Weight.Conservative()
	}
	return out
}

// MeanWeights returns w̄ for every task.
func MeanWeights(w *wf.Workflow) []float64 {
	out := make([]float64, w.NumTasks())
	for _, t := range w.Tasks() {
		out[t.ID] = t.Weight.Mean
	}
	return out
}

// SampleWeights draws one realization of every task weight.
func SampleWeights(w *wf.Workflow, r *rng.RNG) []float64 {
	out := make([]float64, w.NumTasks())
	for _, t := range w.Tasks() {
		out[t.ID] = t.Weight.Sample(r)
	}
	return out
}

// SampleWeightsOutliers draws realizations under the heavy-tail
// outlier model of stoch.Outliers — the regime the online-rescheduling
// extension targets. Outlier fire/no-fire decisions come from a
// dedicated stream split off r, so the weight draws consumed from r
// are identical to SampleWeights for any Prob (common random numbers).
func SampleWeightsOutliers(w *wf.Workflow, r *rng.RNG, o stoch.Outliers) []float64 {
	decisions := r.Split(stoch.OutlierStreamLabel)
	out := make([]float64, w.NumTasks())
	for _, t := range w.Tasks() {
		out[t.ID] = o.Sample(t.Weight, r, decisions)
	}
	return out
}

// Run simulates the schedule with the given realized weights.
func Run(w *wf.Workflow, p *platform.Platform, s *plan.Schedule, weights []float64) (*Result, error) {
	if len(weights) != w.NumTasks() {
		return nil, fmt.Errorf("sim: %d weights for %d tasks", len(weights), w.NumTasks())
	}
	e, err := newEngine(w, p, s, weights)
	if err != nil {
		return nil, err
	}
	return e.run()
}

// RunDeterministic simulates under conservative weights (w̄+σ): the
// planner's own world. Used by the refinement algorithms and by tests
// asserting planner/simulator consistency.
func RunDeterministic(w *wf.Workflow, p *platform.Platform, s *plan.Schedule) (*Result, error) {
	return Run(w, p, s, ConservativeWeights(w))
}

// RunStochastic samples task weights and simulates one execution.
func RunStochastic(w *wf.Workflow, p *platform.Platform, s *plan.Schedule, r *rng.RNG) (*Result, error) {
	return Run(w, p, s, SampleWeights(w, r))
}
