package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"budgetwf/internal/plan"
	"budgetwf/internal/wf"
)

// WriteGantt renders an ASCII Gantt chart of the execution: one row
// per VM, time flowing rightwards, with '·' for boot, '▒' for staging
// and '█' for computation. width is the number of character columns
// for the time axis (minimum 20).
func (r *Result) WriteGantt(w io.Writer, workflow *wf.Workflow, s *plan.Schedule, width int) error {
	if width < 20 {
		width = 20
	}
	span := r.LastEvent - r.FirstBook
	if span <= 0 {
		span = 1
	}
	col := func(t float64) int {
		c := int((t - r.FirstBook) / span * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Gantt: %s — makespan %.1f s, cost $%.4f, %d VMs\n",
		workflow.Name, r.Makespan, r.TotalCost, len(r.VMs))
	fmt.Fprintf(&b, "time %.0f..%.0f s, '·' boot, '▒' staging, '█' compute\n", r.FirstBook, r.LastEvent)

	// Group tasks per VM in start order for labelling.
	tasksOf := make([][]wf.TaskID, len(r.VMs))
	for t := range r.Tasks {
		vm := s.TaskVM[t]
		if vm >= 0 && vm < len(tasksOf) {
			tasksOf[vm] = append(tasksOf[vm], wf.TaskID(t))
		}
	}
	for vmIdx, vm := range r.VMs {
		row := make([]rune, width)
		for i := range row {
			row[i] = ' '
		}
		for c := col(vm.Book); c <= col(vm.Start) && c < width; c++ {
			row[c] = '·'
		}
		sort.Slice(tasksOf[vmIdx], func(a, b int) bool {
			return r.Tasks[tasksOf[vmIdx][a]].StageStart < r.Tasks[tasksOf[vmIdx][b]].StageStart
		})
		for _, t := range tasksOf[vmIdx] {
			tt := r.Tasks[t]
			for c := col(tt.StageStart); c <= col(tt.ComputeStart) && c < width; c++ {
				if row[c] == ' ' || row[c] == '·' {
					row[c] = '▒'
				}
			}
			for c := col(tt.ComputeStart); c <= col(tt.Finish) && c < width; c++ {
				row[c] = '█'
			}
		}
		fmt.Fprintf(&b, "vm%-3d cat%-2d |%s| %d tasks, $%.4f\n", vmIdx, vm.Cat, string(row), vm.NumTasks, vm.Cost)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTrace emits one line per task in finish order: the realized
// timeline, placement and blame — the raw material of a SimGrid-style
// trace file.
func (r *Result) WriteTrace(w io.Writer, workflow *wf.Workflow, s *plan.Schedule) error {
	order := make([]wf.TaskID, len(r.Tasks))
	for i := range order {
		order[i] = wf.TaskID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return r.Tasks[order[a]].Finish < r.Tasks[order[b]].Finish
	})
	var b strings.Builder
	fmt.Fprintf(&b, "# task vm cat stage_start compute_start finish blame\n")
	for _, t := range order {
		tt := r.Tasks[t]
		vm := s.TaskVM[t]
		blame := "none"
		switch r.Blames[t].Kind {
		case BlameVMBusy:
			blame = fmt.Sprintf("vm-busy(after %s)", workflow.Task(r.Blames[t].Pred).Name)
		case BlameDataArrival:
			blame = fmt.Sprintf("data(from %s)", workflow.Task(r.Blames[t].Pred).Name)
		case BlameBoot:
			blame = "boot"
		}
		fmt.Fprintf(&b, "%-24s vm%-3d cat%d %10.2f %10.2f %10.2f  %s\n",
			workflow.Task(t).Name, vm, s.VMCats[vm], tt.StageStart, tt.ComputeStart, tt.Finish, blame)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
