package sim

import "testing"

func TestObjectiveSatisfiedBy(t *testing.T) {
	r := &Result{Makespan: 100, TotalCost: 5}
	cases := []struct {
		o    Objective
		want bool
	}{
		{Objective{}, true},                          // both disabled
		{Objective{Deadline: 100, Budget: 5}, true},  // boundary inclusive
		{Objective{Deadline: 99}, false},             // deadline missed
		{Objective{Budget: 4.99}, false},             // budget blown
		{Objective{Deadline: 200}, true},             // deadline only
		{Objective{Budget: 10}, true},                // budget only
		{Objective{Deadline: 99, Budget: 10}, false}, // conjunction
	}
	for i, c := range cases {
		if got := c.o.SatisfiedBy(r); got != c.want {
			t.Errorf("case %d: %v", i, got)
		}
	}
}

func TestObjectiveStats(t *testing.T) {
	o := Objective{Deadline: 100, Budget: 5}
	var s ObjectiveStats
	s.Observe(o, &Result{Makespan: 90, TotalCost: 4})  // both
	s.Observe(o, &Result{Makespan: 110, TotalCost: 4}) // budget only
	s.Observe(o, &Result{Makespan: 90, TotalCost: 6})  // deadline only
	s.Observe(o, &Result{Makespan: 110, TotalCost: 6}) // neither
	if s.Runs != 4 || s.DeadlineMet != 2 || s.BudgetMet != 2 || s.BothMet != 1 {
		t.Errorf("stats %+v", s)
	}
	if s.Frac(s.BothMet) != 0.25 {
		t.Errorf("frac %v", s.Frac(s.BothMet))
	}
	var empty ObjectiveStats
	if empty.Frac(0) != 0 {
		t.Error("empty frac")
	}
}
