package sim

import (
	"math"
	"strings"
	"testing"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
)

// testPlatform uses round numbers so every timeline below can be
// verified by hand: speed 10 instr/s, links 10 B/s, 5 s boot,
// $1/s VM cost, $2 setup, $0.1/s datacenter, $0.01/B external traffic.
func testPlatform() *platform.Platform {
	return &platform.Platform{
		Categories: []platform.Category{
			{Name: "only", Speed: 10, CostPerSec: 1, InitCost: 2},
		},
		Bandwidth:           10,
		BootTime:            5,
		DCCostPerSec:        0.1,
		TransferCostPerByte: 0.01,
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func singleVMSchedule(w *wf.Workflow, order ...wf.TaskID) *plan.Schedule {
	s := plan.New(w.NumTasks())
	s.ListT = order
	vm := s.AddVM(0)
	for _, t := range order {
		s.Assign(t, vm)
	}
	return s
}

func TestSingleTaskTimeline(t *testing.T) {
	w := wf.New("one")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	if err := w.SetExternalIO(a, 20, 10); err != nil {
		t.Fatal(err)
	}
	s := singleVMSchedule(w, a)
	res, err := Run(w, testPlatform(), s, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	// book 0, boot →5, stage 20B/10 →7, compute 100/10 →17, upload →18.
	tt := res.Tasks[a]
	if !almostEq(tt.StageStart, 5) || !almostEq(tt.ComputeStart, 7) || !almostEq(tt.Finish, 17) {
		t.Errorf("timeline %+v", tt)
	}
	if !almostEq(res.Makespan, 18) {
		t.Errorf("makespan %v", res.Makespan)
	}
	vm := res.VMs[0]
	if !almostEq(vm.Book, 0) || !almostEq(vm.Start, 5) || !almostEq(vm.End, 18) {
		t.Errorf("vm usage %+v", vm)
	}
	if !almostEq(vm.Cost, 13*1+2) {
		t.Errorf("vm cost %v", vm.Cost)
	}
	if !almostEq(res.DCCost, 30*0.01+18*0.1) {
		t.Errorf("dc cost %v", res.DCCost)
	}
	if !almostEq(res.TotalCost, 15+2.1) {
		t.Errorf("total cost %v", res.TotalCost)
	}
}

func TestChainSameVMKeepsDataLocal(t *testing.T) {
	w := wf.New("chain")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	b := w.AddTask("b", stoch.Dist{Mean: 50})
	w.MustAddEdge(a, b, 40)
	s := singleVMSchedule(w, a, b)
	res, err := Run(w, testPlatform(), s, []float64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	// boot →5, A computes 5→15, B computes 15→20 with no staging.
	if !almostEq(res.Tasks[b].StageStart, 15) || !almostEq(res.Tasks[b].ComputeStart, 15) || !almostEq(res.Tasks[b].Finish, 20) {
		t.Errorf("B timeline %+v", res.Tasks[b])
	}
	if !almostEq(res.Makespan, 20) {
		t.Errorf("makespan %v", res.Makespan)
	}
	if res.Blames[b].Kind != BlameVMBusy || res.Blames[b].Pred != a {
		t.Errorf("B blame %+v", res.Blames[b])
	}
}

func TestChainAcrossVMsPaysDatacenterRoundTrip(t *testing.T) {
	w := wf.New("chain")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	b := w.AddTask("b", stoch.Dist{Mean: 50})
	w.MustAddEdge(a, b, 40)
	s := plan.New(2)
	s.ListT = []wf.TaskID{a, b}
	s.Assign(a, s.AddVM(0))
	s.Assign(b, s.AddVM(0))
	res, err := Run(w, testPlatform(), s, []float64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	// A: boot →5, compute →15, upload 4 s → data at DC at 19.
	// B's VM books at 19, boots →24, stages 4 s →28, computes →33.
	bt := res.Tasks[b]
	if !almostEq(bt.StageStart, 24) || !almostEq(bt.ComputeStart, 28) || !almostEq(bt.Finish, 33) {
		t.Errorf("B timeline %+v", bt)
	}
	if !almostEq(res.Makespan, 33) {
		t.Errorf("makespan %v", res.Makespan)
	}
	if res.Blames[b].Kind != BlameDataArrival || res.Blames[b].Pred != a {
		t.Errorf("B blame %+v", res.Blames[b])
	}
	// A's VM is alive until its upload lands: End = 19.
	if !almostEq(res.VMs[0].End, 19) {
		t.Errorf("vm0 end %v", res.VMs[0].End)
	}
	// B's VM books only when the data reaches the datacenter.
	if !almostEq(res.VMs[1].Book, 19) {
		t.Errorf("vm1 book %v", res.VMs[1].Book)
	}
	cp := res.CriticalPath()
	if len(cp) != 2 || cp[0] != a || cp[1] != b {
		t.Errorf("critical path %v", cp)
	}
}

func TestParallelTasksOverlap(t *testing.T) {
	w := wf.New("par")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	b := w.AddTask("b", stoch.Dist{Mean: 100})
	s := plan.New(2)
	s.ListT = []wf.TaskID{a, b}
	s.Assign(a, s.AddVM(0))
	s.Assign(b, s.AddVM(0))
	res, err := Run(w, testPlatform(), s, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Makespan, 15) {
		t.Errorf("two independent tasks on two VMs: makespan %v", res.Makespan)
	}
	if res.NumVMs() != 2 {
		t.Errorf("NumVMs %d", res.NumVMs())
	}
}

func TestUploadOverlapsNextCompute(t *testing.T) {
	// A then C on one VM; A's output feeds B on another VM. A's upload
	// must overlap C's computation (full duplex, asynchronous out).
	w := wf.New("overlap")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	b := w.AddTask("b", stoch.Dist{Mean: 10})
	c := w.AddTask("c", stoch.Dist{Mean: 100})
	w.MustAddEdge(a, b, 100) // 10 s upload
	s := plan.New(3)
	s.ListT = []wf.TaskID{a, c, b}
	vm0 := s.AddVM(0)
	vm1 := s.AddVM(0)
	s.Assign(a, vm0)
	s.Assign(c, vm0)
	s.Assign(b, vm1)
	res, err := Run(w, testPlatform(), s, []float64{100, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	// vm0: boot →5, A →15, C starts immediately →25 (upload of A's
	// output runs 15→25 concurrently).
	if !almostEq(res.Tasks[c].ComputeStart, 15) || !almostEq(res.Tasks[c].Finish, 25) {
		t.Errorf("C timeline %+v", res.Tasks[c])
	}
	// B: data at DC 25, book 25, boot →30, stage →40, compute →41.
	if !almostEq(res.Tasks[b].Finish, 41) {
		t.Errorf("B finish %v", res.Tasks[b].Finish)
	}
}

func TestZeroSizeEdgeCrossesInstantly(t *testing.T) {
	w := wf.New("zero")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	b := w.AddTask("b", stoch.Dist{Mean: 50})
	w.MustAddEdge(a, b, 0)
	s := plan.New(2)
	s.ListT = []wf.TaskID{a, b}
	s.Assign(a, s.AddVM(0))
	s.Assign(b, s.AddVM(0))
	res, err := Run(w, testPlatform(), s, []float64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	// B books when A finishes (15): boot →20, no staging, compute →25.
	if !almostEq(res.Tasks[b].Finish, 25) {
		t.Errorf("B finish %v", res.Tasks[b].Finish)
	}
}

func TestCostDecompositionExact(t *testing.T) {
	w := wf.New("mix")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	b := w.AddTask("b", stoch.Dist{Mean: 60})
	c := w.AddTask("c", stoch.Dist{Mean: 30})
	w.MustAddEdge(a, b, 40)
	w.MustAddEdge(a, c, 20)
	if err := w.SetExternalIO(a, 50, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.SetExternalIO(c, 0, 30); err != nil {
		t.Fatal(err)
	}
	s := plan.New(3)
	s.ListT = []wf.TaskID{a, b, c}
	vm0 := s.AddVM(0)
	vm1 := s.AddVM(0)
	s.Assign(a, vm0)
	s.Assign(b, vm1)
	s.Assign(c, vm0)
	p := testPlatform()
	res, err := Run(w, p, s, []float64{100, 60, 30})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.DCCost
	for _, vm := range res.VMs {
		recomputed := p.VMCost(vm.Cat, vm.Start, vm.End)
		if !almostEq(vm.Cost, recomputed) {
			t.Errorf("vm cost %v, recomputed %v", vm.Cost, recomputed)
		}
		sum += vm.Cost
	}
	if !almostEq(res.TotalCost, sum) {
		t.Errorf("total %v, sum %v", res.TotalCost, sum)
	}
	wantDC := (50+30)*p.TransferCostPerByte + (res.LastEvent-res.FirstBook)*p.DCCostPerSec
	if !almostEq(res.DCCost, wantDC) {
		t.Errorf("dc cost %v, want %v", res.DCCost, wantDC)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	w := wf.New("w")
	a := w.AddTask("a", stoch.Dist{Mean: 10})
	s := singleVMSchedule(w, a)
	p := testPlatform()
	if _, err := Run(w, p, s, nil); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := Run(w, p, s, []float64{0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := Run(w, p, s, []float64{math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	bad := plan.New(1)
	if _, err := Run(w, p, bad, []float64{10}); err == nil {
		t.Error("unassigned schedule accepted")
	}
}

func TestTransitiveOrderDeadlockDetected(t *testing.T) {
	// 0→1→2 with 0 and 2 on vm0 ordered [2, 0]: no direct edge inside
	// vm0, so plan.Validate passes, but execution can never progress.
	w := wf.New("dead")
	a := w.AddTask("a", stoch.Dist{Mean: 10})
	b := w.AddTask("b", stoch.Dist{Mean: 10})
	c := w.AddTask("c", stoch.Dist{Mean: 10})
	w.MustAddEdge(a, b, 10)
	w.MustAddEdge(b, c, 10)
	s := plan.New(3)
	s.ListT = []wf.TaskID{a, b, c}
	vm0 := s.AddVM(0)
	vm1 := s.AddVM(0)
	s.TaskVM[a] = vm0
	s.TaskVM[b] = vm1
	s.TaskVM[c] = vm0
	s.Order[vm0] = []wf.TaskID{c, a}
	s.Order[vm1] = []wf.TaskID{b}
	_, err := Run(w, testPlatform(), s, []float64{10, 10, 10})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestWeightHelpers(t *testing.T) {
	w := wf.New("w")
	w.AddTask("a", stoch.Dist{Mean: 100, Sigma: 25})
	w.AddTask("b", stoch.Dist{Mean: 50, Sigma: 10})
	cons := ConservativeWeights(w)
	if cons[0] != 125 || cons[1] != 60 {
		t.Errorf("conservative %v", cons)
	}
	mean := MeanWeights(w)
	if mean[0] != 100 || mean[1] != 50 {
		t.Errorf("mean %v", mean)
	}
}

func TestWithinBudget(t *testing.T) {
	r := &Result{TotalCost: 10}
	if !r.WithinBudget(10) || r.WithinBudget(9.99) {
		t.Error("WithinBudget wrong")
	}
}
