package sim

import (
	"testing"

	"budgetwf/internal/plan"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
)

func TestUtilizationSingleTask(t *testing.T) {
	w := wf.New("u")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	if err := w.SetExternalIO(a, 20, 10); err != nil {
		t.Fatal(err)
	}
	s := singleVMSchedule(w, a)
	res, err := Run(w, testPlatform(), s, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	// Billed span 5..18 = 13 s; busy = staging 2 + compute 10 = 12 s
	// (the final 1 s upload is idle-but-billed).
	vm := res.VMs[0]
	if !almostEq(vm.Busy, 12) {
		t.Errorf("busy %v, want 12", vm.Busy)
	}
	if !almostEq(vm.Utilization(), 12.0/13.0) {
		t.Errorf("utilization %v", vm.Utilization())
	}
	if !almostEq(res.FleetUtilization(), 12.0/13.0) {
		t.Errorf("fleet utilization %v", res.FleetUtilization())
	}
}

func TestUtilizationCapturesIdleGap(t *testing.T) {
	// B waits on A's data via the datacenter while its own VM idles.
	w := wf.New("idle")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	early := w.AddTask("early", stoch.Dist{Mean: 10})
	b := w.AddTask("b", stoch.Dist{Mean: 50})
	w.MustAddEdge(a, b, 40)
	s := plan.New(3)
	s.ListT = []wf.TaskID{a, early, b}
	vm0 := s.AddVM(0)
	vm1 := s.AddVM(0)
	s.Assign(a, vm0)
	s.Assign(early, vm1)
	s.Assign(b, vm1)
	res, err := Run(w, testPlatform(), s, []float64{100, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	// vm1: boots 0→5, early computes 5→6, then idles until A's data is
	// at the DC (19), stages 19→23, computes 23→28. Billed 5..28 = 23,
	// busy = 1 + 9 = 10.
	vm1u := res.VMs[1]
	if !almostEq(vm1u.Busy, 10) {
		t.Errorf("vm1 busy %v, want 10", vm1u.Busy)
	}
	if vm1u.Utilization() > 0.5 {
		t.Errorf("vm1 utilization %v should expose the idle gap", vm1u.Utilization())
	}
}
