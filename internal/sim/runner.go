package sim

import (
	"fmt"

	"budgetwf/internal/obs"
	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
)

// Runner replays one schedule many times without re-allocating the
// engine: the graph caches, event heap, flow arena and result buffers
// are built once and rewound per execution. Monte Carlo replication
// loops (exp sweeps, the daemon's /v1/simulate, replication-based
// objectives) should prefer a Runner over the package-level Run*
// functions, which pay the full engine construction per call.
//
// A Runner is NOT safe for concurrent use, and each *Result it returns
// aliases the Runner's internal buffers: it is valid only until the
// next Run/RunStochastic call. Callers that need to keep a Result
// across replications must copy the fields they care about (the usual
// pattern — appending r.Makespan, r.TotalCost, r.NumVMs() to
// accumulators — never retains the Result).
type Runner struct {
	eng   *engine
	dists []stoch.Dist // per-task weight distributions, cached once
	buf   []float64    // scratch realized weights for RunStochastic

	span *obs.Span // optional tracing parent, see SetSpan
	reps int       // executions since SetSpan, numbers the children
}

// SetSpan attaches a tracing span to the Runner: every subsequent
// execution opens a numbered "replication" child span recording the
// realized makespan, total cost and VM count (internal/obs). A nil
// span — the default — keeps Run at a single pointer check.
func (r *Runner) SetSpan(s *obs.Span) {
	r.span = s
	r.reps = 0
}

// NewRunner validates the (workflow, platform, schedule) triple once
// and returns a Runner for repeated executions of that schedule.
func NewRunner(w *wf.Workflow, p *platform.Platform, s *plan.Schedule) (*Runner, error) {
	st, err := newEngineStatic(w, p, s)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		eng:   newEngineFromStatic(st),
		dists: make([]stoch.Dist, w.NumTasks()),
		buf:   make([]float64, w.NumTasks()),
	}
	for _, t := range w.Tasks() {
		r.dists[t.ID] = t.Weight
	}
	return r, nil
}

// Run simulates one execution under the given realized weights. The
// weights slice is only read during the call.
func (r *Runner) Run(weights []float64) (*Result, error) {
	if len(weights) != len(r.buf) {
		return nil, fmt.Errorf("sim: %d weights for %d tasks", len(weights), len(r.buf))
	}
	if err := r.eng.reset(weights); err != nil {
		return nil, err
	}
	if r.span == nil {
		return r.eng.run()
	}
	sp := r.span.Child("replication")
	sp.Set(obs.Int("rep", r.reps))
	r.reps++
	res, err := r.eng.run()
	if err != nil {
		sp.Set(obs.Str("error", err.Error()))
	} else {
		sp.Set(obs.Float("makespan", res.Makespan),
			obs.Float("cost", res.TotalCost),
			obs.Int("vms", res.NumVMs()))
	}
	sp.End()
	return res, err
}

// RunStochastic samples every task weight from its distribution and
// simulates one execution.
func (r *Runner) RunStochastic(rand *rng.RNG) (*Result, error) {
	for t, d := range r.dists {
		r.buf[t] = d.Sample(rand)
	}
	return r.Run(r.buf)
}

// RunStochasticOutliers is RunStochastic under the heavy-tail outlier
// model (see stoch.Outliers). Decisions draw from a stream split off
// rand so the weight stream matches RunStochastic exactly (CRN).
func (r *Runner) RunStochasticOutliers(rand *rng.RNG, o stoch.Outliers) (*Result, error) {
	decisions := rand.Split(stoch.OutlierStreamLabel)
	for t, d := range r.dists {
		r.buf[t] = o.Sample(d, rand, decisions)
	}
	return r.Run(r.buf)
}

// RunDeterministic simulates under conservative weights (w̄+σ).
func (r *Runner) RunDeterministic() (*Result, error) {
	for t, d := range r.dists {
		r.buf[t] = d.Conservative()
	}
	return r.Run(r.buf)
}
