package sim

import (
	"strings"
	"testing"

	"budgetwf/internal/plan"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
)

func ganttFixture(t *testing.T) (*wf.Workflow, *plan.Schedule, *Result) {
	t.Helper()
	w := wf.New("g")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	b := w.AddTask("b", stoch.Dist{Mean: 50})
	w.MustAddEdge(a, b, 40)
	if err := w.SetExternalIO(a, 20, 0); err != nil {
		t.Fatal(err)
	}
	s := plan.New(2)
	s.ListT = []wf.TaskID{a, b}
	s.Assign(a, s.AddVM(0))
	s.Assign(b, s.AddVM(0))
	res, err := Run(w, testPlatform(), s, []float64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	return w, s, res
}

func TestWriteGantt(t *testing.T) {
	w, s, res := ganttFixture(t)
	var b strings.Builder
	if err := res.WriteGantt(&b, w, s, 60); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Gantt:", "makespan", "vm0", "vm1", "█", "·"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header (2 lines) + one row per VM.
	if len(lines) != 2+len(res.VMs) {
		t.Errorf("gantt has %d lines, want %d", len(lines), 2+len(res.VMs))
	}
}

func TestWriteGanttTinyWidthClamped(t *testing.T) {
	w, s, res := ganttFixture(t)
	var b strings.Builder
	if err := res.WriteGantt(&b, w, s, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "vm0") {
		t.Error("clamped-width gantt unusable")
	}
}

func TestWriteTrace(t *testing.T) {
	w, s, res := ganttFixture(t)
	var b strings.Builder
	if err := res.WriteTrace(&b, w, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "a ") || !strings.Contains(out, "b ") {
		t.Errorf("trace missing task names:\n%s", out)
	}
	// b waited for a's data through the datacenter.
	if !strings.Contains(out, "data(from a)") {
		t.Errorf("trace missing blame annotation:\n%s", out)
	}
	// Finish order: a's line before b's.
	if strings.Index(out, "\na") > strings.Index(out, "\nb") {
		t.Error("trace not in finish order")
	}
}
