package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"budgetwf/internal/rng"
)

// TestRunnerMatchesOneShot: replaying a schedule through one Runner
// must give bit-identical results to the allocating package-level
// entry points, replication after replication — the buffer reuse must
// be invisible.
func TestRunnerMatchesOneShot(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, s, p := randomCase(r)
		runner, err := NewRunner(w, p, s)
		if err != nil {
			t.Logf("seed %d: NewRunner: %v", seed, err)
			return false
		}
		// Two independent but identically-seeded streams: one for the
		// Runner, one for the one-shot API.
		sa := rng.New(uint64(seed)).Split(7)
		sb := rng.New(uint64(seed)).Split(7)
		for rep := 0; rep < 5; rep++ {
			ra, err1 := runner.RunStochastic(sa.Split(uint64(rep)))
			rb, err2 := RunStochastic(w, p, s, sb.Split(uint64(rep)))
			if err1 != nil || err2 != nil {
				t.Logf("seed %d rep %d: %v / %v", seed, rep, err1, err2)
				return false
			}
			if ra.Makespan != rb.Makespan || ra.TotalCost != rb.TotalCost ||
				ra.DCCost != rb.DCCost || ra.NumVMs() != rb.NumVMs() ||
				ra.FirstBook != rb.FirstBook || ra.LastEvent != rb.LastEvent {
				t.Logf("seed %d rep %d: runner %+v != one-shot %+v", seed, rep, ra, rb)
				return false
			}
			for i := range rb.Tasks {
				if ra.Tasks[i] != rb.Tasks[i] || ra.Blames[i] != rb.Blames[i] {
					t.Logf("seed %d rep %d: task %d diverged", seed, rep, i)
					return false
				}
			}
			for v := range rb.VMs {
				if ra.VMs[v] != rb.VMs[v] {
					t.Logf("seed %d rep %d: VM %d diverged", seed, rep, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRunnerDeterministicMatches: Runner.RunDeterministic equals
// RunDeterministic, and explicit-weights Run equals package Run.
func TestRunnerDeterministicMatches(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	w, s, p := randomCase(r)
	runner, err := NewRunner(w, p, s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := runner.RunDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDeterministic(w, p, s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.TotalCost != b.TotalCost {
		t.Errorf("deterministic: runner (%v, %v) != one-shot (%v, %v)",
			a.Makespan, a.TotalCost, b.Makespan, b.TotalCost)
	}
	weights := MeanWeights(w)
	a, err = runner.Run(weights)
	if err != nil {
		t.Fatal(err)
	}
	b, err = Run(w, p, s, weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.TotalCost != b.TotalCost {
		t.Errorf("explicit weights: runner (%v, %v) != one-shot (%v, %v)",
			a.Makespan, a.TotalCost, b.Makespan, b.TotalCost)
	}
}

// TestRunnerRejectsBadWeights: wrong count and non-positive weights
// fail cleanly, and the Runner still works afterwards.
func TestRunnerRejectsBadWeights(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	w, s, p := randomCase(r)
	runner, err := NewRunner(w, p, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(make([]float64, w.NumTasks()+1)); err == nil {
		t.Error("wrong weight count accepted")
	}
	bad := MeanWeights(w)
	bad[0] = -1
	if _, err := runner.Run(bad); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := runner.RunDeterministic(); err != nil {
		t.Errorf("runner unusable after rejected input: %v", err)
	}
}

// TestRunnerResultAliased documents the Result lifetime: the next call
// overwrites the previous Result in place.
func TestRunnerResultAliased(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	w, s, p := randomCase(r)
	runner, err := NewRunner(w, p, s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := runner.RunDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	b, err := runner.RunDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Runner should reuse one Result value across calls")
	}
}
