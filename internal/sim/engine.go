package sim

import (
	"fmt"
	"math"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/wf"
)

// eventKind discriminates entries of the fixed-event heap.
type eventKind int

const (
	evBootDone eventKind = iota
	evComputeDone
	evFlowDone // only used when the datacenter bandwidth is unbounded
)

type event struct {
	time float64
	seq  int // insertion order, for deterministic tie-breaking
	kind eventKind
	vm   int
	task wf.TaskID
	flow *flow
}

// eventHeap is a hand-rolled binary min-heap of event values ordered
// by (time, seq). container/heap would box every Push/Pop through
// interface{}, allocating per event on the Monte Carlo hot path; this
// keeps events in one reusable backing array.
type eventHeap []event

func (h eventHeap) before(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.before(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the flow pointer
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.before(l, smallest) {
			smallest = l
		}
		if r < n && s.before(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// flowKind discriminates data movements.
type flowKind int

const (
	flowStaging flowKind = iota // datacenter → VM, serialized before compute
	flowUpload                  // VM → datacenter, asynchronous
)

// flow is one data movement. In unbounded-DC mode its completion time
// is known at creation; in fluid mode remaining/rate evolve.
type flow struct {
	kind      flowKind
	vm        int       // staging: destination; upload: source
	task      wf.TaskID // staging: consumer; upload: producer
	edge      int       // upload: edge index, or -1 for an external output
	remaining float64
	rate      float64
	seq       int
	done      bool
}

// vmState tracks one VM through the simulation.
type vmState struct {
	cat      int
	queue    []wf.TaskID
	next     int
	booked   bool
	booting  bool
	bookTime float64
	bootDone float64
	busy     bool // staging or computing
	freeAt   float64
	prevTask wf.TaskID // last completed task, for blame
	hasPrev  bool
	end      float64 // H_end,v so far
	busyTime float64 // accumulated staging + compute time
}

// engineStatic is the schedule-dependent, run-independent part of the
// engine: cached graph structure, staging volumes and the validation
// outcome. A Runner computes it once and replays many executions
// against it; the one-shot entry points build it per call.
type engineStatic struct {
	w     *wf.Workflow
	p     *platform.Platform
	s     *plan.Schedule
	fluid bool

	outEdges  [][]wf.Edge // cached successor edges (wf.Succ allocates)
	extOut    []float64   // cached external output volumes
	stageSize []float64   // bytes to stage before computing (incl. external in)
	missing0  []int       // initial count of crossing inputs per task
	flowCap   int         // upper bound on flows per run, sizing the arena
	maxSteps  int
}

func newEngineStatic(w *wf.Workflow, p *platform.Platform, s *plan.Schedule) (*engineStatic, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(w, p.NumCategories()); err != nil {
		return nil, err
	}
	n := w.NumTasks()
	st := &engineStatic{
		w:         w,
		p:         p,
		s:         s,
		fluid:     p.DCBandwidth > 0,
		outEdges:  make([][]wf.Edge, n),
		extOut:    make([]float64, n),
		stageSize: make([]float64, n),
		missing0:  make([]int, n),
		maxSteps:  16 * (n + w.NumEdges() + s.NumVMs() + 16),
	}
	crossEdges := 0
	for t := 0; t < n; t++ {
		task := w.Task(wf.TaskID(t))
		st.stageSize[t] = task.ExternalIn
		st.extOut[t] = task.ExternalOut
		st.outEdges[t] = w.Succ(wf.TaskID(t))
		for _, edge := range w.Pred(wf.TaskID(t)) {
			if s.TaskVM[edge.From] != s.TaskVM[edge.To] {
				st.stageSize[t] += edge.Size
				st.missing0[t]++
				crossEdges++
			}
		}
	}
	// One staging flow per task, one upload per crossing edge, one
	// external-output upload per task, at most.
	st.flowCap = 2*n + crossEdges
	return st, nil
}

// engine is the per-run mutable state. Reset() rewinds it so one
// allocation of every buffer serves a whole replication batch.
type engine struct {
	st      *engineStatic
	weights []float64

	now       float64
	seq       int
	events    eventHeap
	flows     []*flow // active fluid flows (fluid mode only)
	flowArena []flow  // backing store; cap is fixed so pointers stay stable
	doneBuf   []*flow // scratch for advanceFlows

	vms []vmState

	// Per-task bookkeeping.
	missing      []int // crossing inputs not yet at the datacenter
	dcReadyTime  []float64
	dcReadyPred  []wf.TaskID
	hasDCPred    []bool
	times        []TaskTimes
	blames       []Blame
	doneCount    int
	finishedTask []bool
	xferCost     float64 // inter-provider per-byte surcharges accrued

	result Result // reused by collect()
}

func newEngineFromStatic(st *engineStatic) *engine {
	n := st.w.NumTasks()
	return &engine{
		st:           st,
		flowArena:    make([]flow, 0, st.flowCap),
		vms:          make([]vmState, st.s.NumVMs()),
		missing:      make([]int, n),
		dcReadyTime:  make([]float64, n),
		dcReadyPred:  make([]wf.TaskID, n),
		hasDCPred:    make([]bool, n),
		times:        make([]TaskTimes, n),
		blames:       make([]Blame, n),
		finishedTask: make([]bool, n),
	}
}

func newEngine(w *wf.Workflow, p *platform.Platform, s *plan.Schedule, weights []float64) (*engine, error) {
	st, err := newEngineStatic(w, p, s)
	if err != nil {
		return nil, err
	}
	e := newEngineFromStatic(st)
	if err := e.reset(weights); err != nil {
		return nil, err
	}
	return e, nil
}

// reset rewinds the engine to time zero with the given realized
// weights, reusing every buffer allocated by newEngineFromStatic.
func (e *engine) reset(weights []float64) error {
	for t, wt := range weights {
		if wt <= 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
			return fmt.Errorf("sim: task %d has invalid weight %v", t, wt)
		}
	}
	e.weights = weights
	e.now = 0
	e.seq = 0
	e.events = e.events[:0]
	e.flows = e.flows[:0]
	e.flowArena = e.flowArena[:0]
	e.doneCount = 0
	e.xferCost = 0
	s := e.st.s
	for i := range e.vms {
		e.vms[i] = vmState{cat: s.VMCats[i], queue: s.Order[i]}
	}
	copy(e.missing, e.st.missing0)
	for t := range e.dcReadyTime {
		e.dcReadyTime[t] = 0
		e.dcReadyPred[t] = 0
		e.hasDCPred[t] = false
		e.times[t] = TaskTimes{}
		e.blames[t] = Blame{}
		e.finishedTask[t] = false
	}
	return nil
}

func (e *engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events.push(ev)
}

// newFlow places f in the arena and returns a stable pointer. The
// arena capacity bounds the flows any run can create, so append never
// reallocates; the defensive overflow branch heap-allocates instead of
// invalidating existing pointers.
func (e *engine) newFlow(f flow) *flow {
	var p *flow
	if len(e.flowArena) < cap(e.flowArena) {
		e.flowArena = e.flowArena[:len(e.flowArena)+1]
		p = &e.flowArena[len(e.flowArena)-1]
	} else {
		p = new(flow)
	}
	// Copy through the pointer rather than returning &f: taking the
	// parameter's address would force a heap allocation at every call
	// site, arena hit or not.
	*p = f
	return p
}

// startFlow begins a data movement of size bytes. Zero-size flows
// complete synchronously via the caller's follow-up logic, so callers
// must not create them.
func (e *engine) startFlow(f *flow) {
	f.seq = e.seq
	e.seq++
	// Every flow crosses the VM↔DC link of the flow's VM; on a market
	// platform that means the VM provider's bandwidth, a fixed
	// inter-provider latency, and a per-byte transfer surcharge. All
	// three degenerate to the scalar model (latency 0, surcharge 0,
	// CatBandwidth == Bandwidth) on single-provider platforms.
	cat := e.vms[f.vm].cat
	e.xferCost += f.remaining * e.st.p.XferCost(cat)
	if !e.st.fluid {
		e.push(event{time: e.now + e.st.p.XferLat(cat) + f.remaining/e.st.p.CatBandwidth(cat), kind: evFlowDone, flow: f})
		return
	}
	e.flows = append(e.flows, f)
}

// assignRates implements max-min fair sharing of the datacenter
// bandwidth across active flows, each additionally capped by the
// per-VM link bandwidth.
func (e *engine) assignRates() {
	k := len(e.flows)
	if k == 0 {
		return
	}
	share := e.st.p.DCBandwidth / float64(k)
	rate := math.Min(e.st.p.Bandwidth, share)
	// If the per-link cap binds for every flow, the aggregate is under
	// the DC cap and everyone gets the link rate; otherwise the equal
	// DC share applies (all flows have the same cap, so max-min fair
	// sharing reduces to the minimum of the two).
	for _, f := range e.flows {
		f.rate = rate
	}
}

// advanceFlows moves fluid flows forward by dt and returns those that
// completed, preserving creation order for determinism. The returned
// slice is scratch, valid until the next call.
func (e *engine) advanceFlows(dt float64) []*flow {
	done := e.doneBuf[:0]
	remainingFlows := e.flows[:0]
	for _, f := range e.flows {
		f.remaining -= f.rate * dt
		if f.remaining <= 1e-9 {
			f.remaining = 0
			f.done = true
			done = append(done, f)
		} else {
			remainingFlows = append(remainingFlows, f)
		}
	}
	e.flows = remainingFlows
	e.doneBuf = done
	return done
}

// tryAdvance examines the head task of VM v and starts whatever phase
// can start now: booking, staging, or computing.
func (e *engine) tryAdvance(v int) {
	vm := &e.vms[v]
	if vm.next >= len(vm.queue) || vm.busy || vm.booting {
		return
	}
	t := vm.queue[vm.next]
	if e.missing[t] > 0 {
		return // inputs still on their way to the datacenter
	}
	if !vm.booked {
		// Book the VM now: its first task's data is at the datacenter.
		vm.booked = true
		vm.booting = true
		vm.bookTime = e.now
		vm.bootDone = e.now + e.st.p.CatBootTime(vm.cat)
		e.push(event{time: vm.bootDone, kind: evBootDone, vm: v})
		return
	}
	// VM is booted and idle: start staging (or compute directly).
	vm.busy = true
	e.times[t].StageStart = e.now
	e.blames[t] = e.blameFor(v, t)
	if e.st.stageSize[t] > 0 {
		e.startFlow(e.newFlow(flow{kind: flowStaging, vm: v, task: t, edge: -1, remaining: e.st.stageSize[t]}))
		return
	}
	e.startCompute(v, t)
}

// blameFor decides which constraint bound the start of task t on VM v.
func (e *engine) blameFor(v int, t wf.TaskID) Blame {
	vm := &e.vms[v]
	dataT := e.dcReadyTime[t]
	if vm.hasPrev {
		if vm.freeAt >= dataT || !e.hasDCPred[t] {
			return Blame{Kind: BlameVMBusy, Pred: vm.prevTask}
		}
		return Blame{Kind: BlameDataArrival, Pred: e.dcReadyPred[t]}
	}
	// First task on the VM: the boot always completes after the data
	// is at the datacenter (booking rule), so blame the data chain if
	// there is one.
	if e.hasDCPred[t] {
		return Blame{Kind: BlameDataArrival, Pred: e.dcReadyPred[t]}
	}
	return Blame{Kind: BlameNone}
}

func (e *engine) startCompute(v int, t wf.TaskID) {
	e.times[t].ComputeStart = e.now
	dur := e.weights[t] / e.st.p.Categories[e.vms[v].cat].Speed
	e.push(event{time: e.now + dur, kind: evComputeDone, vm: v, task: t})
}

func (e *engine) finishCompute(v int, t wf.TaskID) {
	vm := &e.vms[v]
	e.times[t].Finish = e.now
	e.finishedTask[t] = true
	e.doneCount++
	vm.busyTime += e.now - e.times[t].StageStart
	vm.busy = false
	vm.freeAt = e.now
	vm.prevTask = t
	vm.hasPrev = true
	if e.now > vm.end {
		vm.end = e.now
	}
	// Launch uploads for consumers on other VMs and external outputs.
	for ei, edge := range e.st.outEdges[t] {
		if e.st.s.TaskVM[edge.From] == e.st.s.TaskVM[edge.To] {
			continue // data stays local
		}
		if edge.Size == 0 {
			e.uploadArrived(v, edge)
			continue
		}
		e.startFlow(e.newFlow(flow{kind: flowUpload, vm: v, task: t, edge: ei, remaining: edge.Size}))
	}
	if out := e.st.extOut[t]; out > 0 {
		e.startFlow(e.newFlow(flow{kind: flowUpload, vm: v, task: t, edge: -1, remaining: out}))
	}
	vm.next++
	e.tryAdvance(v)
}

// uploadArrived records that edge's payload reached the datacenter and
// wakes the consumer's VM if the consumer became ready.
func (e *engine) uploadArrived(srcVM int, edge wf.Edge) {
	if e.now > e.vms[srcVM].end {
		e.vms[srcVM].end = e.now
	}
	t := edge.To
	e.missing[t]--
	if e.now >= e.dcReadyTime[t] {
		e.dcReadyTime[t] = e.now
		e.dcReadyPred[t] = edge.From
		e.hasDCPred[t] = true
	}
	if e.missing[t] == 0 {
		e.tryAdvance(e.st.s.TaskVM[t])
	}
}

func (e *engine) handleFlowDone(f *flow) {
	if f.kind == flowStaging {
		e.startCompute(f.vm, f.task)
		return
	}
	// Upload.
	if f.edge >= 0 {
		edges := e.st.outEdges[f.task]
		e.uploadArrived(f.vm, edges[f.edge])
		return
	}
	// External output: only extends the source VM's life.
	if e.now > e.vms[f.vm].end {
		e.vms[f.vm].end = e.now
	}
}

func (e *engine) run() (*Result, error) {
	n := e.st.w.NumTasks()
	for v := range e.vms {
		e.tryAdvance(v)
	}
	guard := 0
	maxSteps := e.st.maxSteps
	for e.doneCount < n || len(e.flows) > 0 || len(e.events) > 0 {
		guard++
		if guard > maxSteps {
			return nil, fmt.Errorf("sim: exceeded %d steps; schedule is livelocked", maxSteps)
		}
		var nextFixed float64 = math.Inf(1)
		if len(e.events) > 0 {
			nextFixed = e.events[0].time
		}
		if e.st.fluid && len(e.flows) > 0 {
			e.assignRates()
			nextFlow := math.Inf(1)
			for _, f := range e.flows {
				if c := f.remaining / f.rate; c < nextFlow {
					nextFlow = c
				}
			}
			if e.now+nextFlow < nextFixed {
				done := e.advanceFlows(nextFlow)
				e.now += nextFlow
				for _, f := range done {
					e.handleFlowDone(f)
				}
				continue
			}
			// A fixed event comes first: advance flows to that instant.
			if !math.IsInf(nextFixed, 1) {
				done := e.advanceFlows(nextFixed - e.now)
				e.now = nextFixed
				for _, f := range done {
					e.handleFlowDone(f)
				}
			}
		}
		if len(e.events) == 0 {
			if e.doneCount < n && len(e.flows) == 0 {
				return nil, fmt.Errorf("sim: deadlock with %d/%d tasks finished", e.doneCount, n)
			}
			continue
		}
		ev := e.events.pop()
		if ev.time < e.now-1e-9 {
			return nil, fmt.Errorf("sim: time went backwards: %v -> %v", e.now, ev.time)
		}
		if ev.time > e.now {
			e.now = ev.time
		}
		switch ev.kind {
		case evBootDone:
			vm := &e.vms[ev.vm]
			vm.booting = false
			vm.freeAt = e.now
			e.tryAdvance(ev.vm)
		case evComputeDone:
			e.finishCompute(ev.vm, ev.task)
		case evFlowDone:
			e.handleFlowDone(ev.flow)
		}
	}
	if e.doneCount < n {
		return nil, fmt.Errorf("sim: deadlock with %d/%d tasks finished", e.doneCount, n)
	}
	return e.collect(), nil
}

// collect assembles the engine's reused Result. Its slices alias the
// engine's buffers: valid until the engine is reset (one-shot entry
// points never reset, so their Results are stable).
func (e *engine) collect() *Result {
	res := &e.result
	*res = Result{Tasks: e.times, Blames: e.blames, VMs: res.VMs[:0]}
	firstBook := math.Inf(1)
	lastEvent := 0.0
	for i := range e.vms {
		vm := &e.vms[i]
		if !vm.booked {
			// A VM with no task never gets booked and costs nothing;
			// Validate prevents empty VMs, so this is defensive.
			continue
		}
		if vm.bookTime < firstBook {
			firstBook = vm.bookTime
		}
		if vm.end > lastEvent {
			lastEvent = vm.end
		}
		cost := e.st.p.VMCost(vm.cat, vm.bootDone, vm.end)
		res.VMs = append(res.VMs, VMUsage{
			Cat:      vm.cat,
			Book:     vm.bookTime,
			Start:    vm.bootDone,
			End:      vm.end,
			Cost:     cost,
			NumTasks: len(vm.queue),
			Busy:     vm.busyTime,
		})
	}
	if math.IsInf(firstBook, 1) {
		firstBook = 0
	}
	res.FirstBook = firstBook
	res.LastEvent = lastEvent
	res.Makespan = lastEvent - firstBook
	res.DCCost = e.st.p.DCCost(e.st.w.ExternalInSize(), e.st.w.ExternalOutSize(), firstBook, lastEvent)
	res.XferCost = e.xferCost
	res.TotalCost = res.DCCost + res.VMCost() + res.XferCost
	return res
}
