package sim

import (
	"testing"

	"budgetwf/internal/obs"
	"budgetwf/internal/plan"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
)

// TestRunnerReplicationSpans checks that a Runner with an attached
// span opens one numbered "replication" child per execution carrying
// the realized makespan, and that detaching returns the hot path to a
// pointer check.
func TestRunnerReplicationSpans(t *testing.T) {
	w := wf.New("r")
	a := w.AddTask("a", stoch.Dist{Mean: 100})
	b := w.AddTask("b", stoch.Dist{Mean: 50})
	w.MustAddEdge(a, b, 40)
	s := plan.New(2)
	s.ListT = []wf.TaskID{a, b}
	s.Assign(a, s.AddVM(0))
	s.Assign(b, s.AddVM(0))

	r, err := NewRunner(w, testPlatform(), s)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("batch")
	r.SetSpan(tr.Root())
	const reps = 3
	for i := 0; i < reps; i++ {
		if _, err := r.RunDeterministic(); err != nil {
			t.Fatal(err)
		}
	}
	r.SetSpan(nil)
	if _, err := r.RunDeterministic(); err != nil {
		t.Fatal(err)
	}
	tr.EndAll()

	root := tr.Tree().Root
	if len(root.Children) != reps {
		t.Fatalf("replication children = %d, want %d", len(root.Children), reps)
	}
	for i, c := range root.Children {
		if c.Name != "replication" {
			t.Fatalf("child %d named %q", i, c.Name)
		}
		if got := c.Attrs["rep"]; got != int64(i) {
			t.Errorf("child %d rep attr = %v (%T)", i, got, got)
		}
		ms, ok := c.Attrs["makespan"].(float64)
		if !ok || ms <= 0 {
			t.Errorf("child %d makespan attr = %v", i, c.Attrs["makespan"])
		}
	}
}
