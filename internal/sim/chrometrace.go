package sim

import (
	"fmt"
	"io"

	"budgetwf/internal/obs"
	"budgetwf/internal/plan"
	"budgetwf/internal/wf"
)

// WriteChromeTrace exports the execution as a Chrome trace-event JSON
// document: one timeline row per VM, with boot, staging and compute
// intervals, loadable in chrome://tracing or https://ui.perfetto.dev.
// The document types are shared with the span tracer (internal/obs),
// so a planner trace and a VM timeline can be merged into one file.
func (r *Result) WriteChromeTrace(w io.Writer, workflow *wf.Workflow, s *plan.Schedule) error {
	return r.ChromeTrace(workflow, s).Write(w)
}

// ChromeTrace builds the VM-timeline trace-event document.
func (r *Result) ChromeTrace(workflow *wf.Workflow, s *plan.Schedule) *obs.ChromeTrace {
	const us = 1e6 // simulation seconds → trace microseconds
	trace := &obs.ChromeTrace{DisplayTimeUnit: "ms"}

	for vmIdx, vm := range r.VMs {
		trace.TraceEvents = append(trace.TraceEvents,
			obs.MetaThreadName(0, vmIdx, fmt.Sprintf("vm%d (cat %d)", vmIdx, vm.Cat)))
		if vm.Start > vm.Book {
			trace.TraceEvents = append(trace.TraceEvents, obs.ChromeEvent{
				Name: "boot", Cat: "vm", Ph: "X",
				TS: vm.Book * us, Dur: (vm.Start - vm.Book) * us,
				PID: 0, TID: vmIdx,
			})
		}
	}
	for t := range r.Tasks {
		tt := r.Tasks[t]
		vm := s.TaskVM[t]
		name := workflow.Task(wf.TaskID(t)).Name
		if tt.ComputeStart > tt.StageStart {
			trace.TraceEvents = append(trace.TraceEvents, obs.ChromeEvent{
				Name: name + " (stage)", Cat: "staging", Ph: "X",
				TS: tt.StageStart * us, Dur: (tt.ComputeStart - tt.StageStart) * us,
				PID: 0, TID: vm,
			})
		}
		trace.TraceEvents = append(trace.TraceEvents, obs.ChromeEvent{
			Name: name, Cat: "compute", Ph: "X",
			TS: tt.ComputeStart * us, Dur: (tt.Finish - tt.ComputeStart) * us,
			PID: 0, TID: vm,
			Args: map[string]any{"task": t},
		})
	}
	return trace
}
