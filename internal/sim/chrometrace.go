package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"budgetwf/internal/plan"
	"budgetwf/internal/wf"
)

// chromeEvent is one entry of the Chrome trace-event format, the JSON
// consumed by chrome://tracing and Perfetto. Durations use the "X"
// (complete event) phase; timestamps are microseconds.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the execution as a Chrome trace-event JSON
// document: one timeline row per VM, with boot, staging and compute
// intervals, loadable in chrome://tracing or https://ui.perfetto.dev.
func (r *Result) WriteChromeTrace(w io.Writer, workflow *wf.Workflow, s *plan.Schedule) error {
	const us = 1e6 // simulation seconds → trace microseconds
	trace := chromeTrace{DisplayTimeUnit: "ms"}

	for vmIdx, vm := range r.VMs {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: vmIdx,
			Args: map[string]interface{}{
				"name": fmt.Sprintf("vm%d (cat %d)", vmIdx, vm.Cat),
			},
		})
		if vm.Start > vm.Book {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "boot", Cat: "vm", Ph: "X",
				TS: vm.Book * us, Dur: (vm.Start - vm.Book) * us,
				PID: 0, TID: vmIdx,
			})
		}
	}
	for t := range r.Tasks {
		tt := r.Tasks[t]
		vm := s.TaskVM[t]
		name := workflow.Task(wf.TaskID(t)).Name
		if tt.ComputeStart > tt.StageStart {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: name + " (stage)", Cat: "staging", Ph: "X",
				TS: tt.StageStart * us, Dur: (tt.ComputeStart - tt.StageStart) * us,
				PID: 0, TID: vm,
			})
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: name, Cat: "compute", Ph: "X",
			TS: tt.ComputeStart * us, Dur: (tt.Finish - tt.ComputeStart) * us,
			PID: 0, TID: vm,
			Args: map[string]interface{}{"task": t},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
