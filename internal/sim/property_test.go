package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
)

// randomCase builds a random DAG plus a random valid schedule for it:
// tasks are assigned to random VMs and per-VM orders follow task ID,
// which is topological because edges only go from lower to higher IDs.
func randomCase(r *rand.Rand) (*wf.Workflow, *plan.Schedule, *platform.Platform) {
	n := 2 + r.Intn(25)
	w := wf.New("prop")
	for i := 0; i < n; i++ {
		w.AddTask("t", stoch.Dist{Mean: 10 + r.Float64()*500, Sigma: r.Float64() * 100})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.12 {
				w.MustAddEdge(wf.TaskID(i), wf.TaskID(j), r.Float64()*1000)
			}
		}
	}
	for i := 0; i < n; i++ {
		if r.Float64() < 0.3 {
			_ = w.SetExternalIO(wf.TaskID(i), r.Float64()*500, r.Float64()*200)
		}
	}
	p := &platform.Platform{
		Categories: []platform.Category{
			{Name: "s", Speed: 10, CostPerSec: 1, InitCost: 1},
			{Name: "l", Speed: 40, CostPerSec: 5, InitCost: 1},
		},
		Bandwidth:    50,
		BootTime:     float64(r.Intn(10)),
		DCCostPerSec: 0.01, TransferCostPerByte: 0.001,
	}
	if r.Float64() < 0.4 {
		p.DCBandwidth = 50 + r.Float64()*100
	}
	numVMs := 1 + r.Intn(5)
	s := plan.New(n)
	for v := 0; v < numVMs; v++ {
		s.AddVM(r.Intn(2))
	}
	for i := 0; i < n; i++ {
		s.ListT = append(s.ListT, wf.TaskID(i))
	}
	for i := 0; i < n; i++ {
		s.TaskVM[i] = r.Intn(numVMs)
	}
	s.CompactVMs()
	return w, s, p
}

// TestSimulationInvariants checks, on random (workflow, schedule,
// platform) triples, the structural invariants every execution must
// satisfy.
func TestSimulationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, s, p := randomCase(r)
		weights := SampleWeights(w, rng.New(uint64(seed)))
		res, err := Run(w, p, s, weights)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// (1) Precedence: a task never starts computing before every
		// predecessor finished.
		for _, e := range w.Edges() {
			if res.Tasks[e.To].ComputeStart < res.Tasks[e.From].Finish-1e-9 {
				t.Logf("seed %d: precedence %d→%d violated", seed, e.From, e.To)
				return false
			}
			// Crossing edges additionally pay the round trip.
			if s.TaskVM[e.From] != s.TaskVM[e.To] {
				arr := res.Tasks[e.From].Finish + e.Size/p.Bandwidth
				if res.Tasks[e.To].StageStart < arr-1e-9 && e.Size > 0 && p.DCBandwidth == 0 {
					t.Logf("seed %d: edge %d→%d staged before DC arrival", seed, e.From, e.To)
					return false
				}
			}
		}
		// (2) Per-VM mutual exclusion of compute intervals.
		for _, order := range s.Order {
			for i := 1; i < len(order); i++ {
				prev, cur := order[i-1], order[i]
				if res.Tasks[cur].ComputeStart < res.Tasks[prev].Finish-1e-9 {
					t.Logf("seed %d: VM overlap %d then %d", seed, prev, cur)
					return false
				}
			}
		}
		// (3) Cost decomposition is exact.
		sum := res.DCCost
		for _, vm := range res.VMs {
			sum += vm.Cost
			if vm.End < vm.Start-1e-9 || vm.Start < vm.Book-1e-9 {
				t.Logf("seed %d: VM lifecycle out of order %+v", seed, vm)
				return false
			}
		}
		if !almostEq(sum, res.TotalCost) {
			t.Logf("seed %d: cost %v != sum %v", seed, res.TotalCost, sum)
			return false
		}
		// (4) Makespan consistency.
		if !almostEq(res.Makespan, res.LastEvent-res.FirstBook) || res.Makespan < 0 {
			t.Logf("seed %d: makespan inconsistent", seed)
			return false
		}
		// (5) Every task ran within the span.
		for i := range res.Tasks {
			if res.Tasks[i].Finish <= 0 || res.Tasks[i].Finish > res.LastEvent+1e-9 {
				t.Logf("seed %d: task %d finish %v outside span", seed, i, res.Tasks[i].Finish)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSimulationDeterministic: identical inputs give identical results.
func TestSimulationDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		w1, s1, p1 := randomCase(r1)
		r2 := rand.New(rand.NewSource(seed))
		w2, s2, p2 := randomCase(r2)
		weights := MeanWeights(w1)
		a, err1 := Run(w1, p1, s1, weights)
		b, err2 := Run(w2, p2, s2, weights)
		if err1 != nil || err2 != nil {
			return err1 == nil == (err2 == nil)
		}
		return a.Makespan == b.Makespan && a.TotalCost == b.TotalCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWeightMonotonicity: with a fixed schedule, inflating every task
// weight cannot shorten the makespan.
func TestWeightMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, s, p := randomCase(r)
		base := MeanWeights(w)
		inflated := make([]float64, len(base))
		for i, x := range base {
			inflated[i] = x * (1 + r.Float64())
		}
		a, err1 := Run(w, p, s, base)
		b, err2 := Run(w, p, s, inflated)
		if err1 != nil || err2 != nil {
			return false
		}
		return b.Makespan >= a.Makespan-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSigmaZeroStochasticEqualsMean: sampling with σ=0 is exactly the
// mean-weight execution.
func TestSigmaZeroStochasticEqualsMean(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	w, s, p := randomCase(r)
	w0 := w.WithSigmaRatio(0)
	a, err := RunStochastic(w0, p, s, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w0, p, s, MeanWeights(w0))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.TotalCost != b.TotalCost {
		t.Errorf("σ=0 stochastic (%v, %v) != mean run (%v, %v)", a.Makespan, a.TotalCost, b.Makespan, b.TotalCost)
	}
}

// TestCriticalPathIsPath: blame-walking yields a chain of tasks with
// non-decreasing finish times ending at the global last finisher.
func TestCriticalPathIsPath(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, s, p := randomCase(r)
		res, err := Run(w, p, s, MeanWeights(w))
		if err != nil {
			return false
		}
		cp := res.CriticalPath()
		if len(cp) == 0 {
			return false
		}
		for i := 1; i < len(cp); i++ {
			if res.Tasks[cp[i]].Finish < res.Tasks[cp[i-1]].Finish-1e-9 {
				return false
			}
		}
		last := cp[len(cp)-1]
		for i := range res.Tasks {
			if res.Tasks[i].Finish > res.Tasks[last].Finish+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
