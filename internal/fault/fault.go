// Package fault models the failures real IaaS platforms inject into a
// workflow execution and that the paper's model abstracts away:
// crash-stop VM failures, failed boots, and transient task failures.
//
// The package deliberately contains no execution logic. It defines
//
//   - Spec, the JSON-serializable description of a fault environment
//     (crash rate λ per hour per category, boot-failure probability,
//     transient task-failure probability, a seed), shared by
//     cmd/simulate and budgetwfd's /v1/simulate;
//   - Model / VMTrace, the sampling interface the failure-aware
//     executor in internal/online consumes, so the engine stays
//     fault-agnostic (a zero-rate model reproduces internal/sim
//     bit-for-bit — a property test enforces it);
//   - Recovery, the policy applied when a failure strikes: RetrySame
//     (reboot the same category with capped exponential backoff),
//     ResubmitFastest (fresh fastest-category VM), or Replicate
//     (both at once, first finisher wins per task).
//
// Fault traces are sampled from internal/rng streams derived from the
// spec seed and the VM provisioning index, so a trace is a pure
// function of (spec, provisioning order): identical seeds yield
// identical crashes and identical recovery decisions across runs.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Spec is the wire- and CLI-facing description of a fault environment.
// The zero value means "no faults".
type Spec struct {
	// CrashRatePerHour is λ: the rate of the exponential crash-stop
	// process per hour of VM uptime (measured from boot completion).
	// One value broadcasts to every VM category; otherwise provide one
	// rate per category.
	CrashRatePerHour []float64 `json:"crashRatePerHour,omitempty"`
	// BootFailProb is the probability that one VM boot attempt fails.
	// The failure is detected when the boot delay elapses: the boot
	// time is lost (and delays every queued task) but only the
	// category's setup fee is billed, matching the uncharged t_boot.
	BootFailProb float64 `json:"bootFailProb,omitempty"`
	// TaskFailProb is the probability that one task execution fails
	// transiently at the instant it would complete. The compute time
	// is wasted — and billed, the VM stayed up — and the task is
	// retried in place.
	TaskFailProb float64 `json:"taskFailProb,omitempty"`
	// Seed decorrelates the fault trace from the task-weight draws.
	Seed uint64 `json:"seed,omitempty"`
	// Recovery names the recovery policy: "retry-same" (default),
	// "resubmit-fastest", or "replicate".
	Recovery string `json:"recovery,omitempty"`
	// MaxRetries bounds how many times one task may be re-run after
	// failures before it is declared permanently failed; 0 means 3.
	MaxRetries int `json:"maxRetries,omitempty"`
	// RebootBackoffSec is the base delay before a RetrySame/Replicate
	// reboot; it doubles with every consecutive retry of the same
	// task, capped at MaxBackoffSec. Zero means 0 s (immediate).
	RebootBackoffSec float64 `json:"rebootBackoffSec,omitempty"`
	// MaxBackoffSec caps the exponential reboot backoff; 0 means 16×
	// the base.
	MaxBackoffSec float64 `json:"maxBackoffSec,omitempty"`
}

// FieldError reports which Spec field was invalid, so HTTP layers can
// emit per-field 400s.
type FieldError struct {
	Field string
	Msg   string
}

func (e *FieldError) Error() string { return fmt.Sprintf("faults.%s: %s", e.Field, e.Msg) }

func fieldErrf(field, format string, args ...any) error {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// IsZero reports whether the spec injects no faults at all (every rate
// and probability zero), in which case the failure-aware executor is
// exactly internal/sim.
func (s *Spec) IsZero() bool {
	if s == nil {
		return true
	}
	for _, r := range s.CrashRatePerHour {
		if r != 0 {
			return false
		}
	}
	return s.BootFailProb == 0 && s.TaskFailProb == 0
}

// Validate checks every field against the platform's category count.
// Errors are *FieldError values naming the offending field.
func (s *Spec) Validate(numCategories int) error {
	if s == nil {
		return nil
	}
	if len(s.CrashRatePerHour) > 1 && len(s.CrashRatePerHour) != numCategories {
		return fieldErrf("crashRatePerHour", "need 1 or %d rates, got %d", numCategories, len(s.CrashRatePerHour))
	}
	for i, r := range s.CrashRatePerHour {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fieldErrf("crashRatePerHour", "rate %d must be a finite non-negative number, got %v", i, r)
		}
	}
	if s.BootFailProb < 0 || s.BootFailProb >= 1 || math.IsNaN(s.BootFailProb) {
		return fieldErrf("bootFailProb", "must be in [0, 1), got %v", s.BootFailProb)
	}
	if s.TaskFailProb < 0 || s.TaskFailProb >= 1 || math.IsNaN(s.TaskFailProb) {
		return fieldErrf("taskFailProb", "must be in [0, 1), got %v", s.TaskFailProb)
	}
	if s.Recovery != "" {
		if _, err := ParseRecoveryKind(s.Recovery); err != nil {
			return fieldErrf("recovery", "%v", err)
		}
	}
	if s.MaxRetries < 0 || s.MaxRetries > 64 {
		return fieldErrf("maxRetries", "must be in [0, 64], got %d", s.MaxRetries)
	}
	if s.RebootBackoffSec < 0 || math.IsNaN(s.RebootBackoffSec) || math.IsInf(s.RebootBackoffSec, 0) {
		return fieldErrf("rebootBackoffSec", "must be a finite non-negative number, got %v", s.RebootBackoffSec)
	}
	if s.MaxBackoffSec < 0 || math.IsNaN(s.MaxBackoffSec) || math.IsInf(s.MaxBackoffSec, 0) {
		return fieldErrf("maxBackoffSec", "must be a finite non-negative number, got %v", s.MaxBackoffSec)
	}
	if s.MaxBackoffSec > 0 && s.MaxBackoffSec < s.RebootBackoffSec {
		return fieldErrf("maxBackoffSec", "cap %v below base backoff %v", s.MaxBackoffSec, s.RebootBackoffSec)
	}
	return nil
}

// rateFor resolves λ for one category under the broadcast rule.
func (s *Spec) rateFor(cat int) float64 {
	switch {
	case len(s.CrashRatePerHour) == 0:
		return 0
	case len(s.CrashRatePerHour) == 1:
		return s.CrashRatePerHour[0]
	case cat >= 0 && cat < len(s.CrashRatePerHour):
		return s.CrashRatePerHour[cat]
	}
	return 0
}

// RecoveryPolicy materializes the spec's recovery configuration.
func (s *Spec) RecoveryPolicy() Recovery {
	r := Recovery{MaxRetries: s.MaxRetries, RebootBackoff: s.RebootBackoffSec, MaxBackoff: s.MaxBackoffSec}
	if s.Recovery != "" {
		r.Kind, _ = ParseRecoveryKind(s.Recovery)
	}
	return r
}

// ParseSpec decodes a Spec from JSON, rejecting unknown fields and
// trailing garbage (the same strictness as the daemon's envelope).
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("fault: trailing data after spec")
	}
	return &s, nil
}

// ParseSpecBytes is ParseSpec over a byte slice.
func ParseSpecBytes(b []byte) (*Spec, error) {
	return ParseSpec(strings.NewReader(string(b)))
}
