package fault

import (
	"fmt"
	"math"
)

// RecoveryKind selects what the executor does with the work a failure
// destroyed.
type RecoveryKind int

const (
	// RetrySame reboots a VM of the same category — after a capped
	// exponential backoff — and replays the lost tasks on it in their
	// original order. The cheapest policy, and the slowest when the
	// category itself is slow.
	RetrySame RecoveryKind = iota
	// ResubmitFastest books a fresh VM of the fastest category
	// immediately: pay more per second to shorten the exposure window.
	ResubmitFastest
	// Replicate hedges: lost tasks are resubmitted to BOTH a same-
	// category reboot and a fastest-category VM; per task, the first
	// replica to finish wins and the other is cancelled. Doubles the
	// recovery spend for the shortest expected recovery time.
	Replicate
)

// String returns the wire name of the recovery kind.
func (k RecoveryKind) String() string {
	switch k {
	case RetrySame:
		return "retry-same"
	case ResubmitFastest:
		return "resubmit-fastest"
	case Replicate:
		return "replicate"
	}
	return fmt.Sprintf("RecoveryKind(%d)", int(k))
}

// ParseRecoveryKind parses a wire name.
func ParseRecoveryKind(s string) (RecoveryKind, error) {
	switch s {
	case "retry-same", "":
		return RetrySame, nil
	case "resubmit-fastest":
		return ResubmitFastest, nil
	case "replicate":
		return Replicate, nil
	}
	return 0, fmt.Errorf("fault: unknown recovery policy %q (want retry-same, resubmit-fastest or replicate)", s)
}

// Recovery configures failure recovery. The zero value retries on the
// same category up to DefaultMaxRetries times with no backoff.
type Recovery struct {
	Kind RecoveryKind
	// MaxRetries bounds re-runs per task; 0 means DefaultMaxRetries.
	MaxRetries int
	// RebootBackoff is the base reboot delay in seconds; it doubles
	// with each consecutive retry of a task, capped at MaxBackoff.
	RebootBackoff float64
	// MaxBackoff caps the backoff; 0 means 16× RebootBackoff.
	MaxBackoff float64
}

// DefaultMaxRetries is the per-task recovery allowance when
// Recovery.MaxRetries is zero.
const DefaultMaxRetries = 3

// Retries resolves the per-task allowance.
func (r Recovery) Retries() int {
	if r.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return r.MaxRetries
}

// Backoff returns the reboot delay before the attempt-th retry
// (attempt counts from 1): base × 2^(attempt−1), capped.
func (r Recovery) Backoff(attempt int) float64 {
	if r.RebootBackoff <= 0 {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	cap := r.MaxBackoff
	if cap <= 0 {
		cap = 16 * r.RebootBackoff
	}
	d := r.RebootBackoff * math.Pow(2, float64(attempt-1))
	if d > cap {
		d = cap
	}
	return d
}

// Injection bundles what the failure-aware executor needs: a sampled
// model and the recovery configuration. A nil *Injection (or one with
// a nil Model) disables fault injection entirely.
type Injection struct {
	Model    Model
	Recovery Recovery
}

// NewInjection materializes a spec into a per-execution Injection.
// Returns nil for a zero spec, which the executor treats as "no
// faults" (and which a property test pins to internal/sim exactly).
func (s *Spec) NewInjection() *Injection {
	if s == nil {
		return nil
	}
	return &Injection{Model: s.NewModel(), Recovery: s.RecoveryPolicy()}
}

// TaskStatus is the per-task outcome of a failure-aware execution.
type TaskStatus int

const (
	// StatusDone: the task completed (possibly after retries).
	StatusDone TaskStatus = iota
	// StatusFailed: the task was abandoned — its retry allowance ran
	// out, or the budget guard refused further recovery, or an
	// ancestor failed. Its realized times are meaningless.
	StatusFailed
)

// String returns a human-readable status.
func (s TaskStatus) String() string {
	if s == StatusDone {
		return "done"
	}
	return "failed"
}
