package fault

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSpecJSON drives the fault-spec decoder with arbitrary bytes: it
// must never panic, and any spec it accepts must survive a
// marshal→parse round trip with an identical validation verdict.
func FuzzSpecJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"crashRatePerHour":[0.1,0.2,0.3],"seed":42}`))
	f.Add([]byte(`{"bootFailProb":0.05,"taskFailProb":0.01,"recovery":"replicate"}`))
	f.Add([]byte(`{"crashRatePerHour":[1e308],"maxRetries":64,"rebootBackoffSec":5,"maxBackoffSec":60}`))
	f.Add([]byte(`{"recovery":"resubmit-fastest","maxRetries":-3}`))
	f.Add([]byte(`{"crashRatePerHour":[]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpecBytes(data)
		if err != nil {
			return
		}
		verdict := s.Validate(3)
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v (%+v)", err, s)
		}
		s2, err := ParseSpec(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("round trip rejected: %v (%s)", err, out)
		}
		verdict2 := s2.Validate(3)
		if (verdict == nil) != (verdict2 == nil) {
			t.Fatalf("validation verdict changed across round trip: %v vs %v (%s)", verdict, verdict2, out)
		}
		if s.IsZero() != s2.IsZero() {
			t.Fatalf("IsZero changed across round trip (%s)", out)
		}
		if verdict == nil {
			// A valid spec must build a model without panicking.
			_ = s.NewInjection()
		}
	})
}
