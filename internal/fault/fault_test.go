package fault

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSpecValidateTable(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		cats  int
		field string // "" means valid
	}{
		{name: "zero", spec: Spec{}, cats: 3},
		{name: "broadcast rate", spec: Spec{CrashRatePerHour: []float64{0.1}}, cats: 3},
		{name: "per-category rates", spec: Spec{CrashRatePerHour: []float64{0.1, 0.2, 0.3}}, cats: 3},
		{name: "wrong rate count", spec: Spec{CrashRatePerHour: []float64{0.1, 0.2}}, cats: 3, field: "crashRatePerHour"},
		{name: "negative rate", spec: Spec{CrashRatePerHour: []float64{-1}}, cats: 3, field: "crashRatePerHour"},
		{name: "NaN rate", spec: Spec{CrashRatePerHour: []float64{math.NaN()}}, cats: 3, field: "crashRatePerHour"},
		{name: "Inf rate", spec: Spec{CrashRatePerHour: []float64{math.Inf(1)}}, cats: 3, field: "crashRatePerHour"},
		{name: "boot prob 1", spec: Spec{BootFailProb: 1}, cats: 3, field: "bootFailProb"},
		{name: "boot prob negative", spec: Spec{BootFailProb: -0.1}, cats: 3, field: "bootFailProb"},
		{name: "task prob NaN", spec: Spec{TaskFailProb: math.NaN()}, cats: 3, field: "taskFailProb"},
		{name: "good recovery", spec: Spec{Recovery: "replicate"}, cats: 3},
		{name: "bad recovery", spec: Spec{Recovery: "pray"}, cats: 3, field: "recovery"},
		{name: "negative retries", spec: Spec{MaxRetries: -1}, cats: 3, field: "maxRetries"},
		{name: "huge retries", spec: Spec{MaxRetries: 100}, cats: 3, field: "maxRetries"},
		{name: "negative backoff", spec: Spec{RebootBackoffSec: -5}, cats: 3, field: "rebootBackoffSec"},
		{name: "Inf backoff", spec: Spec{RebootBackoffSec: math.Inf(1)}, cats: 3, field: "rebootBackoffSec"},
		{name: "cap below base", spec: Spec{RebootBackoffSec: 10, MaxBackoffSec: 5}, cats: 3, field: "maxBackoffSec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(tc.cats)
			if tc.field == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("want *FieldError for %s, got %v", tc.field, err)
			}
			if fe.Field != tc.field {
				t.Fatalf("field = %q, want %q (err: %v)", fe.Field, tc.field, err)
			}
		})
	}
}

func TestNilSpecIsZeroAndValid(t *testing.T) {
	var s *Spec
	if !s.IsZero() {
		t.Error("nil spec not zero")
	}
	if err := s.Validate(3); err != nil {
		t.Errorf("nil spec invalid: %v", err)
	}
	if s.NewInjection() != nil {
		t.Error("nil spec produced an injection")
	}
}

func TestZeroSpecModelIsNoFaults(t *testing.T) {
	s := &Spec{Seed: 7}
	if s.NewModel() != NoFaults {
		t.Fatal("zero-rate spec did not return NoFaults")
	}
	tr := NoFaults.NewVM(0)
	if tr.BootFails() || tr.TaskFails() || !math.IsInf(tr.TimeToCrash(), 1) {
		t.Fatal("NoFaults trace injects faults")
	}
}

func TestModelDeterminism(t *testing.T) {
	spec := &Spec{CrashRatePerHour: []float64{0.5}, BootFailProb: 0.2, TaskFailProb: 0.1, Seed: 99}
	a, b := spec.NewModel(), spec.NewModel()
	for i := 0; i < 50; i++ {
		ta, tb := a.NewVM(i%3), b.NewVM(i%3)
		if ta.BootFails() != tb.BootFails() {
			t.Fatalf("vm %d: boot outcome diverged", i)
		}
		if ta.TimeToCrash() != tb.TimeToCrash() {
			t.Fatalf("vm %d: crash time diverged", i)
		}
		for j := 0; j < 10; j++ {
			if ta.TaskFails() != tb.TaskFails() {
				t.Fatalf("vm %d exec %d: task outcome diverged", i, j)
			}
		}
	}
}

// TestCrashTimesExponential: the empirical mean time-to-crash matches
// 3600/λ within a loose tolerance.
func TestCrashTimesExponential(t *testing.T) {
	spec := &Spec{CrashRatePerHour: []float64{2}, Seed: 1}
	m := spec.NewModel()
	sum, n := 0.0, 20000
	for i := 0; i < n; i++ {
		sum += m.NewVM(0).TimeToCrash()
	}
	mean := sum / float64(n)
	want := 3600.0 / 2
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("mean time-to-crash %v, want ≈ %v", mean, want)
	}
}

func TestRateBroadcast(t *testing.T) {
	one := &Spec{CrashRatePerHour: []float64{0.3}}
	for cat := 0; cat < 5; cat++ {
		if got := one.rateFor(cat); got != 0.3 {
			t.Fatalf("broadcast rateFor(%d) = %v", cat, got)
		}
	}
	per := &Spec{CrashRatePerHour: []float64{0.1, 0.2, 0.3}}
	for cat, want := range []float64{0.1, 0.2, 0.3} {
		if got := per.rateFor(cat); got != want {
			t.Fatalf("rateFor(%d) = %v, want %v", cat, got, want)
		}
	}
}

func TestRecoveryKindRoundTrip(t *testing.T) {
	for _, k := range []RecoveryKind{RetrySame, ResubmitFastest, Replicate} {
		got, err := ParseRecoveryKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := ParseRecoveryKind("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if k, err := ParseRecoveryKind(""); err != nil || k != RetrySame {
		t.Fatalf("empty kind: got %v, err %v", k, err)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	r := Recovery{RebootBackoff: 2, MaxBackoff: 10}
	wants := []float64{2, 4, 8, 10, 10}
	for i, want := range wants {
		if got := r.Backoff(i + 1); got != want {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	if got := (Recovery{}).Backoff(3); got != 0 {
		t.Fatalf("zero-base backoff = %v, want 0", got)
	}
	// Default cap is 16× the base.
	r = Recovery{RebootBackoff: 1}
	if got := r.Backoff(10); got != 16 {
		t.Fatalf("default cap backoff = %v, want 16", got)
	}
}

func TestParseSpecStrict(t *testing.T) {
	good := `{"crashRatePerHour":[0.1],"bootFailProb":0.05,"recovery":"replicate","maxRetries":2}`
	s, err := ParseSpec(strings.NewReader(good))
	if err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	if s.Recovery != "replicate" || s.MaxRetries != 2 {
		t.Fatalf("parsed spec %+v", s)
	}
	for name, bad := range map[string]string{
		"unknown field": `{"crashRate": 0.1}`,
		"trailing":      `{"bootFailProb":0.1} {}`,
		"not json":      `λ=0.1`,
	} {
		if _, err := ParseSpecBytes([]byte(bad)); err == nil {
			t.Errorf("%s: accepted %q", name, bad)
		}
	}
}

func TestRetriesDefault(t *testing.T) {
	if got := (Recovery{}).Retries(); got != DefaultMaxRetries {
		t.Fatalf("default retries = %d", got)
	}
	if got := (Recovery{MaxRetries: 7}).Retries(); got != 7 {
		t.Fatalf("explicit retries = %d", got)
	}
}
