package fault

import (
	"math"

	"budgetwf/internal/rng"
)

// Model samples the fault environment for one execution. The executor
// calls NewVM once per VM provisioning, in provisioning order; a fresh
// Model must be built per execution (see Spec.NewModel), so repeated
// runs with the same seed replay the same trace.
type Model interface {
	// NewVM returns the sampled fault trace of the next provisioned VM
	// of the given platform category.
	NewVM(cat int) VMTrace
}

// VMTrace is the sampled fate of one provisioned VM.
type VMTrace interface {
	// BootFails reports whether this provisioning's boot attempt fails
	// (decided once, at boot completion).
	BootFails() bool
	// TimeToCrash returns the VM uptime, measured from boot completion,
	// at which the VM crash-stops. +Inf means it survives the run.
	TimeToCrash() float64
	// TaskFails reports whether the next task execution on this VM
	// suffers a transient failure; called once per execution attempt,
	// in execution order.
	TaskFails() bool
}

// NoFaults is the identity model: boots succeed, VMs never crash,
// tasks never fail. A nil Model is treated as NoFaults everywhere.
var NoFaults Model = noFaults{}

type noFaults struct{}

func (noFaults) NewVM(int) VMTrace { return noTrace{} }

type noTrace struct{}

func (noTrace) BootFails() bool      { return false }
func (noTrace) TimeToCrash() float64 { return math.Inf(1) }
func (noTrace) TaskFails() bool      { return false }

// NewModel builds a sampling model for one execution. The trace of the
// i-th provisioned VM is a pure function of (spec seed, i), so fault
// arrivals do not shift when recovery decisions change the downstream
// provisioning sequence — the common-random-numbers property that
// makes recovery policies comparable under one seed.
func (s *Spec) NewModel() Model {
	if s.IsZero() {
		return NoFaults
	}
	return &model{spec: s, root: rng.New(s.Seed)}
}

type model struct {
	spec *Spec
	root *rng.RNG
	next uint64 // provisioning counter
}

func (m *model) NewVM(cat int) VMTrace {
	stream := m.root.Split(m.next)
	m.next++
	t := &trace{stream: stream}
	// Sample eagerly, in a fixed order, so the trace does not depend on
	// which of the three questions the executor asks first.
	if p := m.spec.BootFailProb; p > 0 && stream.Float64() < p {
		t.bootFails = true
	}
	t.crashAt = math.Inf(1)
	if lam := m.spec.rateFor(cat); lam > 0 {
		t.crashAt = stream.ExpFloat64() / (lam / 3600)
	}
	t.taskFailProb = m.spec.TaskFailProb
	return t
}

type trace struct {
	stream       *rng.RNG
	bootFails    bool
	crashAt      float64
	taskFailProb float64
}

func (t *trace) BootFails() bool      { return t.bootFails }
func (t *trace) TimeToCrash() float64 { return t.crashAt }
func (t *trace) TaskFails() bool {
	if t.taskFailProb <= 0 {
		return false
	}
	return t.stream.Float64() < t.taskFailProb
}
