package online

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/sim"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
)

// randomOnlineCase mirrors the simulator's property-test generator:
// random DAG, random valid schedule, random two-category platform.
func randomOnlineCase(r *rand.Rand) (*wf.Workflow, *plan.Schedule, *platform.Platform) {
	n := 2 + r.Intn(20)
	w := wf.New("prop")
	for i := 0; i < n; i++ {
		w.AddTask("t", stoch.Dist{Mean: 10 + r.Float64()*500, Sigma: r.Float64() * 200})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.12 {
				w.MustAddEdge(wf.TaskID(i), wf.TaskID(j), r.Float64()*1000)
			}
		}
	}
	for i := 0; i < n; i++ {
		if r.Float64() < 0.3 {
			_ = w.SetExternalIO(wf.TaskID(i), r.Float64()*500, r.Float64()*200)
		}
	}
	p := &platform.Platform{
		Categories: []platform.Category{
			{Name: "s", Speed: 10, CostPerSec: 1, InitCost: 1},
			{Name: "l", Speed: 40, CostPerSec: 5, InitCost: 1},
		},
		Bandwidth:    50,
		BootTime:     float64(r.Intn(10)),
		DCCostPerSec: 0.01, TransferCostPerByte: 0.001,
	}
	numVMs := 1 + r.Intn(4)
	s := plan.New(n)
	for v := 0; v < numVMs; v++ {
		s.AddVM(r.Intn(2))
	}
	for i := 0; i < n; i++ {
		s.ListT = append(s.ListT, wf.TaskID(i))
		s.TaskVM[i] = r.Intn(numVMs)
	}
	s.CompactVMs()
	return w, s, p
}

// TestParityFuzz extends the disabled-policy parity check to random
// DAGs, schedules and platforms.
func TestParityFuzz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, s, p := randomOnlineCase(r)
		weights := sim.SampleWeights(w, rng.New(uint64(seed)))
		want, err1 := sim.Run(w, p, s, weights)
		got, err2 := Execute(w, p, s, weights, Policy{})
		if err1 != nil || err2 != nil {
			return (err1 == nil) == (err2 == nil)
		}
		return math.Abs(got.Makespan-want.Makespan) <= 1e-6*(1+want.Makespan) &&
			math.Abs(got.TotalCost-want.TotalCost) <= 1e-6*(1+want.TotalCost) &&
			got.NumVMs == want.NumVMs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestMonitoredExecutionInvariants: under an active policy, every
// execution completes, migrations respect the per-task allowance and
// only ever move to the fastest category, and the reported cost is
// internally consistent.
func TestMonitoredExecutionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, s, p := randomOnlineCase(r)
		weights := sim.SampleWeightsOutliers(w, rng.New(uint64(seed)), stoch.Outliers{Prob: 0.2, Factor: 10})
		policy := Policy{TimeoutSigma: 2, MaxMigrations: 1 + r.Intn(2)}
		rep, err := Execute(w, p, s, weights, policy)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		perTask := map[wf.TaskID]int{}
		for _, m := range rep.Migrations {
			perTask[m.Task]++
			if m.ToVM < s.NumVMs() {
				t.Logf("seed %d: migration reused a planned VM", seed)
				return false
			}
			if m.Wasted < 0 || m.At < 0 {
				return false
			}
		}
		for task, c := range perTask {
			if c > policy.maxMigrations() {
				t.Logf("seed %d: task %d migrated %d times", seed, task, c)
				return false
			}
		}
		if rep.NumVMs != s.NumVMs()+len(rep.Migrations) {
			t.Logf("seed %d: NumVMs %d != %d planned + %d migrations",
				seed, rep.NumVMs, s.NumVMs(), len(rep.Migrations))
			return false
		}
		return rep.Makespan > 0 && rep.TotalCost > 0 && rep.DCCost >= 0 && rep.TotalCost >= rep.DCCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestGuardMonotone: adding the budget guard can only reduce the
// number of migrations, and an infinite guard changes nothing.
func TestGuardMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, s, p := randomOnlineCase(r)
		weights := sim.SampleWeightsOutliers(w, rng.New(uint64(seed)), stoch.Outliers{Prob: 0.2, Factor: 10})
		free, err1 := Execute(w, p, s, weights, Policy{TimeoutSigma: 2, MaxMigrations: 1})
		tight, err2 := Execute(w, p, s, weights, Policy{TimeoutSigma: 2, MaxMigrations: 1, Budget: 1e-6})
		loose, err3 := Execute(w, p, s, weights, Policy{TimeoutSigma: 2, MaxMigrations: 1, Budget: 1e12})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if len(tight.Migrations) != 0 {
			t.Logf("seed %d: tight guard still migrated", seed)
			return false
		}
		if len(loose.Migrations) != len(free.Migrations) {
			t.Logf("seed %d: loose guard changed migrations (%d vs %d)",
				seed, len(loose.Migrations), len(free.Migrations))
			return false
		}
		return loose.Makespan == free.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
