package online

import (
	"math"
	"testing"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/sched"
	"budgetwf/internal/sim"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
	"budgetwf/internal/wfgen"
)

// TestParityWithSimulatorWhenDisabled is the key correctness anchor:
// with monitoring disabled, the online executor must reproduce the
// discrete-event simulator's makespan and cost exactly, across all
// workflow families and stochastic weights.
func TestParityWithSimulatorWhenDisabled(t *testing.T) {
	p := platform.Default()
	for _, typ := range wfgen.AllPaperTypes() {
		for seed := uint64(0); seed < 3; seed++ {
			w := wfgen.MustGenerate(typ, 30, seed).WithSigmaRatio(0.75)
			s, err := sched.HeftBudg(w, p, 100)
			if err != nil {
				t.Fatal(err)
			}
			weights := sim.SampleWeights(w, rng.New(seed))
			want, err := sim.Run(w, p, s, weights)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Execute(w, p, s, weights, Policy{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Makespan-want.Makespan) > 1e-6*(1+want.Makespan) {
				t.Errorf("%s seed %d: makespan %v (online) vs %v (sim)", typ, seed, got.Makespan, want.Makespan)
			}
			if math.Abs(got.TotalCost-want.TotalCost) > 1e-6*(1+want.TotalCost) {
				t.Errorf("%s seed %d: cost %v (online) vs %v (sim)", typ, seed, got.TotalCost, want.TotalCost)
			}
			if len(got.Migrations) != 0 || got.Vetoed != 0 {
				t.Errorf("%s seed %d: disabled policy intervened", typ, seed)
			}
		}
	}
}

// straggler builds a two-task chain where the first task's realized
// weight is far in the tail, on a slow VM.
func stragglerCase(t *testing.T) (*wf.Workflow, *plan.Schedule, *platform.Platform, []float64) {
	t.Helper()
	w := wf.New("straggler")
	a := w.AddTask("a", stoch.Dist{Mean: 100e9, Sigma: 20e9})
	b := w.AddTask("b", stoch.Dist{Mean: 50e9, Sigma: 5e9})
	w.MustAddEdge(a, b, 10e6)
	p := platform.Default()
	s := plan.New(2)
	s.ListT = []wf.TaskID{a, b}
	vm := s.AddVM(0) // slow category
	s.Assign(a, vm)
	s.Assign(b, vm)
	// a's realized weight is an extreme straggler (5× its mean): the
	// migration must amortize a fresh VM's 60 s boot plus the restart
	// from scratch, so a mild overrun would not be worth moving.
	weights := []float64{500e9, 50e9}
	return w, s, p, weights
}

func TestStragglerIsMigrated(t *testing.T) {
	w, s, p, weights := stragglerCase(t)
	static, err := sim.Run(w, p, s, weights)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(w, p, s, weights, Policy{TimeoutSigma: 2, MaxMigrations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 1 {
		t.Fatalf("migrations = %+v, want exactly 1", rep.Migrations)
	}
	m := rep.Migrations[0]
	if m.Task != 0 {
		t.Errorf("migrated task %d, want the straggler (0)", m.Task)
	}
	// Timeout: (100+2·20)e9 / 1e9 = 140 s after compute start (60 boot).
	if math.Abs(m.At-200) > 1e-6 {
		t.Errorf("interrupt at %v, want 200", m.At)
	}
	if math.Abs(m.Wasted-140) > 1e-6 {
		t.Errorf("wasted %v, want 140", m.Wasted)
	}
	if rep.Makespan >= static.Makespan {
		t.Errorf("online makespan %.1f no better than static %.1f", rep.Makespan, static.Makespan)
	}
	if rep.NumVMs != 2 {
		t.Errorf("NumVMs = %d, want 2 (original + migration target)", rep.NumVMs)
	}
}

func TestLuckyTaskIsNotMigrated(t *testing.T) {
	w, s, p, _ := stragglerCase(t)
	// Realized weights at their means: no timeout fires.
	rep, err := Execute(w, p, s, []float64{100e9, 50e9}, Policy{TimeoutSigma: 2, MaxMigrations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 0 || rep.Vetoed != 0 {
		t.Errorf("no-straggler run intervened: %+v", rep)
	}
}

func TestBudgetGuardVetoes(t *testing.T) {
	// A transfer-heavy straggler: restaging its 25 GB input onto an
	// 8×-as-expensive fastest-category VM costs more than letting the
	// slow VM finish, so with a budget barely above the static cost
	// the guard must refuse the migration.
	w := wf.New("heavyin")
	a := w.AddTask("a", stoch.Dist{Mean: 100e9, Sigma: 20e9})
	if err := w.SetExternalIO(a, 25e9, 0); err != nil {
		t.Fatal(err)
	}
	p := platform.Default()
	s := plan.New(1)
	s.ListT = []wf.TaskID{a}
	s.Assign(a, s.AddVM(0))
	weights := []float64{300e9}
	static, err := sim.Run(w, p, s, weights)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(w, p, s, weights, Policy{TimeoutSigma: 2, MaxMigrations: 1, Budget: static.TotalCost * 1.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 0 {
		t.Fatalf("guard failed to veto: %+v (static cost %v)", rep.Migrations, static.TotalCost)
	}
	if rep.Vetoed != 1 {
		t.Errorf("vetoed = %d, want 1", rep.Vetoed)
	}
	// Vetoed execution equals the static one.
	if math.Abs(rep.Makespan-static.Makespan) > 1e-6 {
		t.Errorf("vetoed makespan %v != static %v", rep.Makespan, static.Makespan)
	}
	if math.Abs(rep.TotalCost-static.TotalCost) > 1e-6 {
		t.Errorf("vetoed cost %v != static %v", rep.TotalCost, static.TotalCost)
	}
}

func TestFastestCategoryNeverMigrates(t *testing.T) {
	w := wf.New("fast")
	a := w.AddTask("a", stoch.Dist{Mean: 100e9, Sigma: 20e9})
	p := platform.Default()
	s := plan.New(1)
	s.ListT = []wf.TaskID{0}
	s.Assign(0, s.AddVM(p.Fastest()))
	rep, err := Execute(w, p, s, []float64{300e9}, Policy{TimeoutSigma: 2, MaxMigrations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 0 {
		t.Error("task on the fastest category was migrated")
	}
	_ = a
}

func TestMaxMigrationsRespected(t *testing.T) {
	// A task so slow that even the fastest category would time out —
	// but the fastest category is never interrupted, so cap the chain
	// differently: slow → fast counts as the single allowed migration.
	w := wf.New("m")
	w.AddTask("a", stoch.Dist{Mean: 100e9, Sigma: 10e9})
	p := platform.Default()
	s := plan.New(1)
	s.ListT = []wf.TaskID{0}
	s.Assign(0, s.AddVM(0))
	rep, err := Execute(w, p, s, []float64{500e9}, Policy{TimeoutSigma: 1, MaxMigrations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 1 {
		t.Fatalf("migrations = %d, want 1", len(rep.Migrations))
	}
	if got := rep.Migrations[0].ToVM; s.VMCats[0] == p.Fastest() || rep.NumVMs != 2 || got != 1 {
		t.Errorf("unexpected migration target layout: %+v", rep)
	}
}

// TestLocalDataReuploadedOnMigration: the migrated task's input was
// produced on the abandoned VM and must transit the datacenter before
// the new VM can stage it.
func TestLocalDataReuploadedOnMigration(t *testing.T) {
	w := wf.New("chainmig")
	a := w.AddTask("a", stoch.Dist{Mean: 10e9, Sigma: 1e9})
	b := w.AddTask("b", stoch.Dist{Mean: 100e9, Sigma: 20e9})
	w.MustAddEdge(a, b, 1250e6) // 10 s of transfer at 125 MB/s
	p := platform.Default()
	s := plan.New(2)
	s.ListT = []wf.TaskID{a, b}
	vm := s.AddVM(0)
	s.Assign(a, vm)
	s.Assign(b, vm)
	weights := []float64{10e9, 400e9} // b is a deep straggler
	rep, err := Execute(w, p, s, weights, Policy{TimeoutSigma: 2, MaxMigrations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 1 {
		t.Fatalf("want 1 migration, got %+v", rep.Migrations)
	}
	// Timeline: boot 60, a computes 60→70 (data local), b starts 70,
	// timeout (100+40)/1 = 140 → interrupt at 210. Then a→DC upload
	// 10 s (220), new VM books at 220, boots 280, stages 10 s (290),
	// computes 400/4 = 100 → finishes 390.
	m := rep.Migrations[0]
	if math.Abs(m.At-210) > 1e-6 {
		t.Errorf("interrupt at %v, want 210", m.At)
	}
	if math.Abs(rep.Makespan-390) > 1e-6 {
		t.Errorf("makespan %v, want 390", rep.Makespan)
	}
}

// TestGainRuleFiltersGaussianTails: under purely Gaussian weights the
// default policy (2σ timeout + gain rule) must perform almost no
// migrations — a Gaussian task that merely landed in its tail never
// justifies paying a fresh VM's boot — whereas the bare 2σ timeout
// without the gain rule fires routinely.
func TestGainRuleFiltersGaussianTails(t *testing.T) {
	p := platform.Default()
	w := wfgen.MustGenerate(wfgen.Montage, 60, 0).WithSigmaRatio(1.0)
	budget := 1.3 * montageCheap(t, w, p)
	s, err := sched.HeftBudg(w, p, budget)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.New(5)
	withRule, withoutRule := 0, 0
	const reps = 30
	for i := 0; i < reps; i++ {
		weights := sim.SampleWeights(w, stream.Split(uint64(i)))
		ruled, err := Execute(w, p, s, weights, Policy{TimeoutSigma: 2, GainFactor: 1, MaxMigrations: 1})
		if err != nil {
			t.Fatal(err)
		}
		bare, err := Execute(w, p, s, weights, Policy{TimeoutSigma: 2, MaxMigrations: 1})
		if err != nil {
			t.Fatal(err)
		}
		withRule += len(ruled.Migrations)
		withoutRule += len(bare.Migrations)
	}
	if withoutRule == 0 {
		t.Fatal("bare 2σ timeouts never fired at σ/w̄ = 1.0 — test scenario broken")
	}
	if withRule*4 > withoutRule {
		t.Errorf("gain rule only reduced migrations %d → %d; expected a drastic cut", withoutRule, withRule)
	}
	t.Logf("Gaussian-tail migrations: %d bare vs %d with gain rule over %d runs", withoutRule, withRule, reps)
}

// TestOnlineImprovesTailUnderOutliers: with heavy-tail blow-ups the
// monitored execution must cut the worst-case makespan while still
// performing migrations.
func TestOnlineImprovesTailUnderOutliers(t *testing.T) {
	p := platform.Default()
	w := wfgen.MustGenerate(wfgen.Montage, 60, 0).WithSigmaRatio(0.5)
	budget := 1.3 * montageCheap(t, w, p)
	s, err := sched.HeftBudg(w, p, budget)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.New(7)
	outliers := stoch.Outliers{Prob: 0.06, Factor: 15}
	totalMigs := 0
	var staticMax, onlineMax float64
	const reps = 30
	for i := 0; i < reps; i++ {
		weights := sim.SampleWeightsOutliers(w, stream.Split(uint64(i)), outliers)
		st, err := sim.Run(w, p, s, weights)
		if err != nil {
			t.Fatal(err)
		}
		on, err := Execute(w, p, s, weights, Policy{TimeoutSigma: 2, GainFactor: 1, MaxMigrations: 1})
		if err != nil {
			t.Fatal(err)
		}
		totalMigs += len(on.Migrations)
		if st.Makespan > staticMax {
			staticMax = st.Makespan
		}
		if on.Makespan > onlineMax {
			onlineMax = on.Makespan
		}
	}
	if totalMigs == 0 {
		t.Fatal("no migrations despite 15× outliers")
	}
	if onlineMax >= staticMax {
		t.Errorf("online worst case %.1f not better than static %.1f", onlineMax, staticMax)
	}
	t.Logf("%d migrations over %d runs; worst case %.1f (online) vs %.1f (static)",
		totalMigs, reps, onlineMax, staticMax)
}

// montageCheap computes the single-cheap-VM cost anchor.
func montageCheap(t *testing.T, w *wf.Workflow, p *platform.Platform) float64 {
	t.Helper()
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	cs := plan.New(w.NumTasks())
	cs.ListT = order
	vm := cs.AddVM(p.Cheapest())
	for _, id := range order {
		cs.Assign(id, vm)
	}
	r, err := sim.RunDeterministic(w, p, cs)
	if err != nil {
		t.Fatal(err)
	}
	return r.TotalCost
}
