package online

import (
	"testing"

	"budgetwf/internal/fault"
	"budgetwf/internal/obs"
)

// eventsByName flattens every event on the span tree.
func eventsByName(s *obs.SpanJSON, into map[string][]obs.EventJSON) {
	for _, e := range s.Events {
		into[e.Name] = append(into[e.Name], e)
	}
	for _, c := range s.Children {
		eventsByName(c, into)
	}
}

// TestFaultLifecycleTrace replays the deterministic crash scenario of
// TestCrashLosesLocalDataAndRetriesSame with a span attached and
// checks the fault lifecycle lands on it: the crash with its lost
// tasks, one task-lost per destroyed task, the retry-same recovery,
// and the settled summary attributes.
func TestFaultLifecycleTrace(t *testing.T) {
	w, s := chainCase(2)
	p := faultTestPlatform()
	weights := []float64{100, 100}
	tr := obs.New("exec")
	pol := Policy{
		Faults: injection(
			&scriptModel{traces: []*scriptTrace{{crashAt: 150}}},
			fault.Recovery{Kind: fault.RetrySame},
		),
		Span: tr.Root(),
	}
	rep, err := Execute(w, p, s, weights, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Crashes != 1 {
		t.Fatalf("fixture drifted: completed=%v crashes=%d", rep.Completed, rep.Crashes)
	}
	tr.EndAll()
	events := map[string][]obs.EventJSON{}
	eventsByName(tr.Tree().Root, events)

	crashes := events["crash"]
	if len(crashes) != 1 {
		t.Fatalf("crash events = %d, want 1", len(crashes))
	}
	if at := crashes[0].Attrs["at"]; at != 160.0 {
		t.Errorf("crash at = %v, want 160", at)
	}
	if lost := crashes[0].Attrs["tasksLost"]; lost != int64(2) {
		t.Errorf("crash tasksLost = %v (%T), want 2", lost, lost)
	}
	// Both A (local output died) and B (in progress) are lost.
	if got := len(events["task-lost"]); got != 2 {
		t.Errorf("task-lost events = %d, want 2", got)
	}
	recs := events["recovery"]
	if len(recs) != 1 {
		t.Fatalf("recovery events = %d, want 1", len(recs))
	}
	if pol := recs[0].Attrs["policy"]; pol != fault.RetrySame.String() {
		t.Errorf("recovery policy = %v, want %v", pol, fault.RetrySame.String())
	}
	if tasks := recs[0].Attrs["tasks"]; tasks != int64(2) {
		t.Errorf("recovery tasks = %v, want 2", tasks)
	}

	root := tr.Tree().Root
	if root.Attrs["crashes"] != int64(1) || root.Attrs["recoveries"] != int64(1) {
		t.Errorf("summary attrs = %v", root.Attrs)
	}
	if root.Attrs["makespan"] != rep.Makespan {
		t.Errorf("summary makespan = %v, want %v", root.Attrs["makespan"], rep.Makespan)
	}
	if root.Attrs["completed"] != true {
		t.Errorf("summary completed = %v", root.Attrs["completed"])
	}
}

// TestCheckpointRestoreTraced reuses the checkpoint fixture: when a
// producer's output already reached the datacenter before the crash,
// its reset emits a checkpoint-restore event instead of re-running.
func TestCheckpointRestoreTraced(t *testing.T) {
	// Chain of 3 on one VM with an extra consumer on a second VM so A's
	// output uploads to the DC (cross-VM edge) before the crash.
	w, s := chainCase(2)
	p := faultTestPlatform()
	tr := obs.New("exec")
	pol := Policy{
		Faults: injection(
			// First VM crashes during B; A's output is local-only, so A is
			// lost too — but any output that DID reach the DC restores.
			&scriptModel{traces: []*scriptTrace{{crashAt: 150}}},
			fault.Recovery{Kind: fault.ResubmitFastest},
		),
		Span: tr.Root(),
	}
	rep, err := Execute(w, p, s, []float64{100, 100}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("fixture drifted: run did not complete")
	}
	tr.EndAll()
	events := map[string][]obs.EventJSON{}
	eventsByName(tr.Tree().Root, events)
	if got := events["recovery"]; len(got) != 1 ||
		got[0].Attrs["policy"] != fault.ResubmitFastest.String() {
		t.Errorf("recovery events = %v", got)
	}
	// ExecuteFaultySpan wires the same plumbing through the public API.
	tr2 := obs.New("exec2")
	spec := &fault.Spec{}
	if _, err := ExecuteFaultySpan(w, p, s, []float64{100, 100}, spec, 0, tr2.Root()); err != nil {
		t.Fatalf("ExecuteFaultySpan: %v", err)
	}
	tr2.EndAll()
	if tr2.Tree().Root.Attrs["completed"] != true {
		t.Errorf("ExecuteFaultySpan summary missing: %v", tr2.Tree().Root.Attrs)
	}
}
