package online

import (
	"fmt"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/wf"
)

// This file is the hosting surface of the executor: the API
// internal/pool uses to run many workflow executions inside one shared
// event loop. A hosted execution is the very same state machine as
// Execute — same dispatch function, same event kinds, same arithmetic —
// with its event queue externalized: instead of popping from its own
// loop, the executor hands every pushed event to the host (Emit) and
// the host feeds events back one at a time (Step) in the host loop's
// global (time, sequence) order. Because evloop assigns sequence
// numbers in push order, a host running a single submission dispatches
// the exact event sequence Execute would, which is what pins the
// pool's single-tenant runs bit-for-bit to this package (see
// internal/pool's property tests).

// Lease hands an already-booted shared-pool VM to a hosted execution
// at booking time. Age is the VM's age — seconds since its original
// boot completed — at the lease instant; billing for the hosted
// execution charges only lifetime extensions past the billing units
// already paid through that age (platform.ExtensionCost).
type Lease struct {
	Age float64
}

// Ev is one opaque pending event of a hosted execution, handed out
// through HostHooks.Emit and returned through Step. The host orders
// them; it never inspects them.
type Ev struct {
	ev *event
}

// HostHooks connects a hosted execution to its host loop. Emit is
// required; the rest are optional.
type HostHooks struct {
	// Emit receives every event the execution schedules, stamped with
	// the execution-relative instant it must dispatch at. The host
	// queues it and later returns it through Step.
	Emit func(at float64, ev Ev)
	// Acquire, when non-nil, is consulted at VM booking time: returning
	// (lease, true) substitutes an already-booted pooled VM of the
	// requested category for a fresh provision (no boot delay, no setup
	// fee, extension-only billing).
	Acquire func(cat int, at float64) (Lease, bool)
	// OnProvision observes every booking — fresh or leased — so the
	// host can charge VM counts and setup fees to the right tenant.
	// bootDone is when the VM becomes usable (the booking instant
	// itself for a leased VM).
	OnProvision func(at float64, vm, cat int, leased bool, bootDone float64)
}

// Hosted is one workflow execution driven by an external event loop.
// Not safe for concurrent use; the host serializes all calls.
type Hosted struct {
	e     *executor
	steps int
}

// NewHosted builds a hosted execution. Fault injection is not
// supported under a host (the shared pool's lease lifecycle and the
// crash/recovery machinery have no defined interaction yet), and the
// datacenter-contention mode is rejected exactly as Execute rejects
// it.
func NewHosted(w *wf.Workflow, p *platform.Platform, s *plan.Schedule, weights []float64, policy Policy, hooks HostHooks) (*Hosted, error) {
	if p.DCBandwidth > 0 {
		return nil, fmt.Errorf("online: datacenter contention mode is not supported")
	}
	if len(weights) != w.NumTasks() {
		return nil, fmt.Errorf("online: %d weights for %d tasks", len(weights), w.NumTasks())
	}
	if policy.Faults != nil && policy.Faults.Model != nil {
		return nil, fmt.Errorf("online: fault injection is not supported in hosted executions")
	}
	if hooks.Emit == nil {
		return nil, fmt.Errorf("online: hosted execution requires an Emit hook")
	}
	policy.Faults = nil
	e, err := newExecutor(w, p, s, weights, policy)
	if err != nil {
		return nil, err
	}
	e.emit = func(ev *event) { hooks.Emit(ev.time, Ev{ev: ev}) }
	e.acquire = hooks.Acquire
	e.onProvision = hooks.OnProvision
	return &Hosted{e: e}, nil
}

// Start performs the initial scheduling pass (booking VMs whose first
// inputs are ready), emitting the first events to the host.
func (h *Hosted) Start() { h.e.tryAdvanceAll() }

// Step dispatches one event previously emitted to the host. The host
// must deliver events in nondecreasing time order (its loop's order);
// a livelocked execution fails rather than spinning.
func (h *Hosted) Step(ev Ev) error {
	h.steps++
	if maxSteps := h.e.maxSteps(); h.steps > maxSteps {
		return fmt.Errorf("online: exceeded %d steps; execution is livelocked", maxSteps)
	}
	if err := h.e.stepTo(ev.ev.time); err != nil {
		return err
	}
	h.e.dispatch(ev.ev)
	return nil
}

// Settled reports whether every task has reached a terminal state.
func (h *Hosted) Settled() bool { return h.e.settled() }

// Now returns the execution-relative clock.
func (h *Hosted) Now() float64 { return h.e.now }

// Finish collects the Report — identical in shape and, for a lone
// submission on an empty pool, in every bit to Execute's. Call it
// exactly once, after Settled.
func (h *Hosted) Finish() *Report { return h.e.collect() }

// Release describes one VM the execution booked, for return to the
// host's pool when the execution settles. All instants are
// execution-relative.
type Release struct {
	// VM is the executor-local VM index (matching OnProvision's vm).
	VM  int
	Cat int
	// Leased reports whether the VM came from the pool; LeaseAge is
	// its age at the lease instant (0 for fresh VMs).
	Leased   bool
	LeaseAge float64
	// BookedAt is the booking instant, BootDone when the VM became
	// usable, End when its last activity (compute or upload) finished.
	BookedAt float64
	BootDone float64
	End      float64
	// AgeAtEnd is the VM's age since its original boot at End — the
	// age the pool's billing horizon is computed from.
	AgeAtEnd float64
}

// Releases lists every VM the execution actually booked, in
// provisioning order. Valid once the execution has settled.
func (h *Hosted) Releases() []Release {
	var out []Release
	for v := range h.e.vms {
		vm := &h.e.vms[v]
		if !vm.booked || vm.bootFailed || vm.dead {
			continue
		}
		end := vm.end
		if end < vm.bootDone {
			end = vm.bootDone
		}
		out = append(out, Release{
			VM:       v,
			Cat:      vm.cat,
			Leased:   vm.leased,
			LeaseAge: vm.leaseAge,
			BookedAt: vm.bookTime,
			BootDone: vm.bootDone,
			End:      end,
			AgeAtEnd: vm.leaseAge + (end - vm.bootDone),
		})
	}
	return out
}

// Dump renders the execution's internal state for deadlock
// diagnostics.
func (h *Hosted) Dump() string { return h.e.stateDump() }
