// Package online implements the paper's future-work direction (§VI):
// on-line re-scheduling. "If we monitor the execution of the tasks, we
// can detect unlikely events such as very long durations, and in such
// cases, it could be beneficial to interrupt some tasks and re-schedule
// them onto faster VMs. Such dynamic decisions encompass risks in terms
// of both final makespan and budget."
//
// The controller watches every computation against a timeout derived
// from the planner's own uncertainty model: a task whose computation on
// a VM of speed s exceeds (w̄ + k·σ)/s has, under the Gaussian weight
// model, landed in the distribution's unlucky tail (probability
// ≈ 2.3% for k = 2). When the timeout fires the controller interrupts
// the task and restarts it from scratch on a freshly booked VM of the
// fastest category — provided the budget guard projects the total
// spend to stay within the initial budget, the task is not already on
// the fastest category, and its migration allowance is not exhausted.
//
// The executor reproduces the execution semantics of internal/sim
// exactly (a test asserts equality when the controller never fires),
// with the additional mechanics interruption requires: data produced
// locally for a migrated consumer is uploaded to the datacenter on
// demand, and the abandoned VM proceeds with its remaining queue.
// The fluid datacenter-contention mode is not supported here.
//
// The executor is also the failure-aware engine behind internal/fault:
// Policy.Faults injects VM crash-stops, boot failures and transient
// task failures. A crash kills its VM mid-task — in-progress work and
// data that never reached the datacenter are lost, while outputs
// already uploaded survive (checkpoint-on-upload) — and the wasted
// uptime stays billed against the budget. Lost tasks go through the
// configured recovery policy under the same budget guard as
// migrations; when the guard refuses a recovery, or a task exhausts
// its retries, the execution degrades gracefully to a partial Report
// with per-task statuses instead of an error.
package online

import (
	"fmt"

	"budgetwf/internal/fault"
	"budgetwf/internal/obs"
	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/sim"
	"budgetwf/internal/wf"
)

// Policy configures the online controller. The zero value disables
// rescheduling entirely (infinite timeout).
type Policy struct {
	// TimeoutSigma is k in the timeout (w̄ + k·σ)/s. Zero or negative
	// disables monitoring.
	TimeoutSigma float64
	// GainFactor γ, when positive, extends the timeout to at least
	// γ × (boot + restage + (w̄+kσ)/s_fastest): the task must have
	// consumed at least γ times what a fast restart would cost before
	// an interrupt is considered. This is the classic speculative-
	// execution rule — at the instant a bare kσ timeout fires, an
	// ordinary Gaussian tail and a pathological blow-up look
	// identical, and killing the former never pays; waiting until the
	// restart is clearly amortized filters almost all false positives
	// while still catching severe stragglers.
	GainFactor float64
	// MaxMigrations bounds how many times one task may be restarted;
	// 0 means one migration per task.
	MaxMigrations int
	// Budget is the initial budget B_ini the guard enforces; 0 lifts
	// the guard.
	Budget float64
	// Faults, when non-nil, injects VM crashes, boot failures and
	// transient task failures into the execution and applies the
	// bundled recovery policy (see internal/fault). A nil Faults — or
	// one whose model is fault.NoFaults with nothing to inject — keeps
	// the execution identical to internal/sim.
	Faults *fault.Injection
	// Span, when non-nil, receives the execution's fault-lifecycle
	// trace (internal/obs): crash, boot-failure, task-failure,
	// task-lost, recovery and migration events with their budget-guard
	// vetoes, plus summary attributes when the run settles. A nil Span
	// keeps every emission site at a single pointer check.
	Span *obs.Span
}

// DefaultPolicy returns the recommended configuration: 2σ timeouts
// extended by the gain rule (γ = 1), one migration per task, guarded
// by the given budget.
func DefaultPolicy(budget float64) Policy {
	return Policy{TimeoutSigma: 2, GainFactor: 1, MaxMigrations: 1, Budget: budget}
}

// maxMigrations resolves the per-task migration allowance.
func (p Policy) maxMigrations() int {
	if p.MaxMigrations <= 0 {
		return 1
	}
	return p.MaxMigrations
}

// Migration records one interruption decision.
type Migration struct {
	Task   wf.TaskID
	FromVM int
	ToVM   int
	// At is when the interrupt fired; Wasted is the computation time
	// thrown away on the abandoned VM.
	At     float64
	Wasted float64
}

// Report is the outcome of one monitored execution.
type Report struct {
	// Makespan and TotalCost follow the same definitions as
	// sim.Result (Equations (1)–(3)).
	Makespan  float64
	TotalCost float64
	DCCost    float64
	// XferCost is the inter-provider transfer surcharge (included in
	// TotalCost); zero in the single-provider model.
	XferCost float64
	// NumVMs counts every VM booked, including ones added by
	// migrations.
	NumVMs int
	// Migrations lists the controller's interventions in time order.
	Migrations []Migration
	// Vetoed counts timeouts where the budget guard (or the
	// fastest-category check) blocked a migration.
	Vetoed int

	// Fault-injection outcome (zero values when Policy.Faults is nil).
	// Crashes counts VM crash-stops that destroyed work, BootFailures
	// failed boot attempts, TaskFailures transient task failures.
	Crashes      int
	BootFailures int
	TaskFailures int
	// Recoveries counts recovery provisionings; RecoveriesVetoed counts
	// recoveries (or in-place retries) the budget guard refused.
	Recoveries       int
	RecoveriesVetoed int
	// WastedSeconds totals VM time that was billed but produced nothing:
	// computations and stagings a failure or a lost replica race threw
	// away, plus idle uptime a crash cut short.
	WastedSeconds float64

	// Spot-market outcome (zero values on platforms without spot
	// categories; see internal/market). A spot VM's death is counted as
	// a Revocation, not a Crash. SpotVMs counts booked VMs of spot
	// categories and SpotCost their share of TotalCost. SpotReworkCost
	// totals the billing revocations wasted plus the setup fees of the
	// on-demand replacements booked by resubmit-on-revoke — the realized
	// counterpart of the rework reserve the spot planner prices in.
	SpotVMs        int
	Revocations    int
	SpotCost       float64
	SpotReworkCost float64

	// Completed reports whether every task finished. When false the
	// execution degraded gracefully to a partial result: TaskStatus
	// records the per-task outcome and the spend covers everything that
	// actually ran.
	Completed   bool
	TasksDone   int
	TasksFailed int
	// TaskStatus holds the per-task outcome, indexed by TaskID.
	TaskStatus []fault.TaskStatus
	// Tasks holds per-task realized times, indexed by TaskID; entries
	// of failed tasks are meaningless.
	Tasks []sim.TaskTimes
}

// Execute runs the schedule with the given realized weights under the
// online controller.
func Execute(w *wf.Workflow, p *platform.Platform, s *plan.Schedule, weights []float64, policy Policy) (*Report, error) {
	if p.DCBandwidth > 0 {
		return nil, fmt.Errorf("online: datacenter contention mode is not supported")
	}
	if len(weights) != w.NumTasks() {
		return nil, fmt.Errorf("online: %d weights for %d tasks", len(weights), w.NumTasks())
	}
	e, err := newExecutor(w, p, s, weights, policy)
	if err != nil {
		return nil, err
	}
	return e.run()
}

// ExecuteStochastic samples weights and runs one monitored execution.
func ExecuteStochastic(w *wf.Workflow, p *platform.Platform, s *plan.Schedule, r *rng.RNG, policy Policy) (*Report, error) {
	return Execute(w, p, s, sim.SampleWeights(w, r), policy)
}

// ExecuteFaulty validates a fault spec against the platform and runs
// one execution under it with the budget guard set to budget (0 lifts
// the guard). Budget-exhausted recoveries degrade the run to a partial
// Report — they are not errors.
func ExecuteFaulty(w *wf.Workflow, p *platform.Platform, s *plan.Schedule, weights []float64, spec *fault.Spec, budget float64) (*Report, error) {
	return ExecuteFaultySpan(w, p, s, weights, spec, budget, nil)
}

// ExecuteFaultySpan is ExecuteFaulty with a tracing span attached:
// the execution's fault-lifecycle events land on span (see
// Policy.Span). A nil span is exactly ExecuteFaulty.
func ExecuteFaultySpan(w *wf.Workflow, p *platform.Platform, s *plan.Schedule, weights []float64, spec *fault.Spec, budget float64, span *obs.Span) (*Report, error) {
	if err := spec.Validate(p.NumCategories()); err != nil {
		return nil, err
	}
	return Execute(w, p, s, weights, Policy{Budget: budget, Faults: spec.NewInjection(), Span: span})
}
