package online

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"budgetwf/internal/fault"
	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/sim"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
)

// scriptModel hands out a fixed list of traces in provisioning order;
// VMs beyond the script never fail. It gives the deterministic tests
// exact control over when each failure strikes.
type scriptModel struct{ traces []*scriptTrace }

func (m *scriptModel) NewVM(cat int) fault.VMTrace {
	if len(m.traces) == 0 {
		return fault.NoFaults.NewVM(cat)
	}
	tr := m.traces[0]
	m.traces = m.traces[1:]
	if tr == nil {
		return fault.NoFaults.NewVM(cat)
	}
	return tr
}

type scriptTrace struct {
	bootFail  bool
	crashAt   float64 // uptime; <= 0 means never
	taskFails []bool
}

func (t *scriptTrace) BootFails() bool { return t.bootFail }
func (t *scriptTrace) TimeToCrash() float64 {
	if t.crashAt <= 0 {
		return math.Inf(1)
	}
	return t.crashAt
}
func (t *scriptTrace) TaskFails() bool {
	if len(t.taskFails) == 0 {
		return false
	}
	f := t.taskFails[0]
	t.taskFails = t.taskFails[1:]
	return f
}

// faultTestPlatform: slow cat 0 (speed 1), fast cat 1 (speed 4),
// boot 10 s, bandwidth 100 B/s.
func faultTestPlatform() *platform.Platform {
	return &platform.Platform{
		Categories: []platform.Category{
			{Name: "slow", Speed: 1, CostPerSec: 1, InitCost: 2},
			{Name: "fast", Speed: 4, CostPerSec: 5, InitCost: 2},
		},
		Bandwidth: 100, BootTime: 10,
		DCCostPerSec: 0.01, TransferCostPerByte: 0.001,
	}
}

func injection(m fault.Model, rec fault.Recovery) *fault.Injection {
	return &fault.Injection{Model: m, Recovery: rec}
}

// chainCase builds A→B→…(weights 100 each, edges 50 B) on one slow VM.
func chainCase(n int) (*wf.Workflow, *plan.Schedule) {
	w := wf.New("chain")
	for i := 0; i < n; i++ {
		w.AddTask("t", stoch.Dist{Mean: 100, Sigma: 1})
	}
	for i := 0; i+1 < n; i++ {
		w.MustAddEdge(wf.TaskID(i), wf.TaskID(i+1), 50)
	}
	s := plan.New(n)
	s.AddVM(0)
	for i := 0; i < n; i++ {
		s.ListT = append(s.ListT, wf.TaskID(i))
		s.TaskVM[i] = 0
	}
	s.CompactVMs()
	return w, s
}

// TestCrashLosesLocalDataAndRetriesSame: a crash mid-B on a VM running
// the chain A→B kills B's computation AND A (its output only existed
// locally), the wasted uptime stays billed, and RetrySame replays both
// on a fresh same-category VM.
func TestCrashLosesLocalDataAndRetriesSame(t *testing.T) {
	w, s := chainCase(2)
	p := faultTestPlatform()
	weights := []float64{100, 100}
	pol := Policy{Faults: injection(
		&scriptModel{traces: []*scriptTrace{{crashAt: 150}}},
		fault.Recovery{Kind: fault.RetrySame},
	)}
	rep, err := Execute(w, p, s, weights, pol)
	if err != nil {
		t.Fatal(err)
	}
	// Timeline: boot 10, A 10..110, B 110..210 — crashed at 160.
	// Recovery VM: book 160, boot 170, A 170..270, B 270..370.
	if !rep.Completed || rep.Crashes != 1 || rep.Recoveries != 1 {
		t.Fatalf("completed=%v crashes=%d recoveries=%d", rep.Completed, rep.Crashes, rep.Recoveries)
	}
	if rep.NumVMs != 2 {
		t.Fatalf("NumVMs = %d, want 2", rep.NumVMs)
	}
	if rep.Makespan != 370 {
		t.Fatalf("makespan = %v, want 370", rep.Makespan)
	}
	if rep.Tasks[0].Finish != 270 || rep.Tasks[1].Finish != 370 {
		t.Fatalf("task finishes = %v / %v, want 270 / 370", rep.Tasks[0].Finish, rep.Tasks[1].Finish)
	}
	if rep.WastedSeconds != 50 {
		t.Fatalf("wasted = %v, want 50 (B ran 110..160)", rep.WastedSeconds)
	}
	// Both VM uptimes billed: [10,160] on the crashed VM, [170,370] on
	// the replacement.
	wantCost := p.VMCost(0, 10, 160) + p.VMCost(0, 170, 370) + p.DCCost(0, 0, 0, 370)
	if math.Abs(rep.TotalCost-wantCost) > 1e-9 {
		t.Fatalf("cost = %v, want %v", rep.TotalCost, wantCost)
	}
}

// TestCheckpointOnUploadSurvivesCrash: an output already uploaded to
// the datacenter survives its producer VM's crash — the producer does
// not re-run; only the in-progress task does.
func TestCheckpointOnUploadSurvivesCrash(t *testing.T) {
	w := wf.New("ckpt")
	a := w.AddTask("A", stoch.Dist{Mean: 10, Sigma: 1})
	b := w.AddTask("B", stoch.Dist{Mean: 10, Sigma: 1})
	c := w.AddTask("C", stoch.Dist{Mean: 200, Sigma: 1})
	w.MustAddEdge(a, b, 100)
	s := plan.New(3)
	s.AddVM(0)
	s.AddVM(0)
	s.ListT = []wf.TaskID{a, b, c}
	s.TaskVM[a], s.TaskVM[c] = 0, 0
	s.TaskVM[b] = 1
	s.Order = [][]wf.TaskID{{a, c}, {b}}
	p := faultTestPlatform()
	weights := []float64{10, 10, 200}
	pol := Policy{Faults: injection(
		&scriptModel{traces: []*scriptTrace{{crashAt: 90}}},
		fault.Recovery{Kind: fault.RetrySame},
	)}
	rep, err := Execute(w, p, s, weights, pol)
	if err != nil {
		t.Fatal(err)
	}
	// VM0: boot 10, A 10..20, upload done 21, C 20..220 — crash at 100.
	// A's output is checkpointed at the DC, so only C re-runs:
	// recovery VM books 100, boots 110, C 110..310.
	if !rep.Completed || rep.Crashes != 1 {
		t.Fatalf("completed=%v crashes=%d", rep.Completed, rep.Crashes)
	}
	if rep.Tasks[a].Finish != 20 {
		t.Fatalf("A finished at %v; a checkpointed task must not re-run", rep.Tasks[a].Finish)
	}
	if rep.Tasks[c].Finish != 310 {
		t.Fatalf("C finished at %v, want 310", rep.Tasks[c].Finish)
	}
	if rep.NumVMs != 3 {
		t.Fatalf("NumVMs = %d, want 3", rep.NumVMs)
	}
	if rep.Makespan != 310 {
		t.Fatalf("makespan = %v, want 310", rep.Makespan)
	}
}

// TestBootFailureBilledSetupOnly: a failed boot costs only the setup
// fee, delays the queue, and recovery reboots after the backoff.
func TestBootFailureBilledSetupOnly(t *testing.T) {
	w, s := chainCase(1)
	p := faultTestPlatform()
	pol := Policy{Faults: injection(
		&scriptModel{traces: []*scriptTrace{{bootFail: true}}},
		fault.Recovery{Kind: fault.RetrySame, RebootBackoff: 5},
	)}
	rep, err := Execute(w, p, s, []float64{100}, pol)
	if err != nil {
		t.Fatal(err)
	}
	// Boot fails at 10; backoff 5 → rebook 15, boot 25, A 25..125.
	if !rep.Completed || rep.BootFailures != 1 || rep.Recoveries != 1 {
		t.Fatalf("completed=%v bootFailures=%d recoveries=%d", rep.Completed, rep.BootFailures, rep.Recoveries)
	}
	if rep.Makespan != 125 {
		t.Fatalf("makespan = %v, want 125", rep.Makespan)
	}
	wantCost := p.Categories[0].InitCost + p.VMCost(0, 25, 125) + p.DCCost(0, 0, 0, 125)
	if math.Abs(rep.TotalCost-wantCost) > 1e-9 {
		t.Fatalf("cost = %v, want %v (boot failure must bill only the setup fee)", rep.TotalCost, wantCost)
	}
}

// TestTransientFailureRetriesInPlace: a transient task failure wastes
// exactly one attempt's compute time and retries on the same VM.
func TestTransientFailureRetriesInPlace(t *testing.T) {
	w, s := chainCase(1)
	p := faultTestPlatform()
	pol := Policy{Faults: injection(
		&scriptModel{traces: []*scriptTrace{{taskFails: []bool{true}}}},
		fault.Recovery{Kind: fault.RetrySame},
	)}
	rep, err := Execute(w, p, s, []float64{100}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.TaskFailures != 1 || rep.NumVMs != 1 {
		t.Fatalf("completed=%v taskFailures=%d numVMs=%d", rep.Completed, rep.TaskFailures, rep.NumVMs)
	}
	if rep.WastedSeconds != 100 {
		t.Fatalf("wasted = %v, want the failed attempt's 100 s", rep.WastedSeconds)
	}
	if rep.Makespan != 210 {
		t.Fatalf("makespan = %v, want 210 (boot 10 + two 100 s attempts)", rep.Makespan)
	}
}

// TestReplicateFirstFinisherWins: Replicate races a same-category
// reboot against a fastest-category VM; the fast copy wins and the
// loser's burned time is reported as waste.
func TestReplicateFirstFinisherWins(t *testing.T) {
	w, s := chainCase(1)
	p := faultTestPlatform()
	pol := Policy{Faults: injection(
		&scriptModel{traces: []*scriptTrace{{crashAt: 100}}},
		fault.Recovery{Kind: fault.Replicate},
	)}
	rep, err := Execute(w, p, s, []float64{400}, pol)
	if err != nil {
		t.Fatal(err)
	}
	// Crash at 110 mid-A. Replicas book 110, boot 120: slow copy would
	// finish at 520, fast copy finishes 120+100=220 and wins.
	if !rep.Completed || rep.Crashes != 1 || rep.Recoveries != 1 {
		t.Fatalf("completed=%v crashes=%d recoveries=%d", rep.Completed, rep.Crashes, rep.Recoveries)
	}
	if rep.NumVMs != 3 {
		t.Fatalf("NumVMs = %d, want 3 (original + two replicas)", rep.NumVMs)
	}
	if rep.Makespan != 220 {
		t.Fatalf("makespan = %v, want 220 (fast replica wins)", rep.Makespan)
	}
	// Waste: 100 s burned before the crash + 100 s on the cancelled
	// slow replica (120..220).
	if rep.WastedSeconds != 200 {
		t.Fatalf("wasted = %v, want 200", rep.WastedSeconds)
	}
}

// TestResubmitFastestRecovery: the lost task moves to a fresh
// fastest-category VM immediately.
func TestResubmitFastestRecovery(t *testing.T) {
	w, s := chainCase(1)
	p := faultTestPlatform()
	pol := Policy{Faults: injection(
		&scriptModel{traces: []*scriptTrace{{crashAt: 100}}},
		fault.Recovery{Kind: fault.ResubmitFastest},
	)}
	rep, err := Execute(w, p, s, []float64{400}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.NumVMs != 2 {
		t.Fatalf("completed=%v numVMs=%d", rep.Completed, rep.NumVMs)
	}
	if rep.Makespan != 220 {
		t.Fatalf("makespan = %v, want 220 (crash 110, fast VM boots 120, runs 100 s)", rep.Makespan)
	}
}

// TestBudgetGuardDegradesToPartialResult: when the budget guard
// refuses a recovery the run is NOT an error — it returns a partial
// report with per-task statuses, the failure cascaded to descendants,
// and the spend so far.
func TestBudgetGuardDegradesToPartialResult(t *testing.T) {
	w, s := chainCase(3)
	p := faultTestPlatform()
	weights := []float64{100, 100, 100}
	pol := Policy{
		Budget: 1, // any recovery projects far beyond this
		Faults: injection(
			&scriptModel{traces: []*scriptTrace{{crashAt: 240}}},
			fault.Recovery{Kind: fault.RetrySame},
		),
	}
	rep, err := Execute(w, p, s, weights, pol)
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not error: %v", err)
	}
	// Crash at 250 mid-C: C in progress, B's and A's outputs local-only
	// → the whole chain is lost, and the guard refuses the reboot.
	if rep.Completed {
		t.Fatal("run reported complete despite vetoed recovery")
	}
	if rep.RecoveriesVetoed != 1 || rep.Recoveries != 0 {
		t.Fatalf("vetoed=%d recoveries=%d", rep.RecoveriesVetoed, rep.Recoveries)
	}
	if rep.TasksFailed != 3 || rep.TasksDone != 0 {
		t.Fatalf("done=%d failed=%d, want 0/3", rep.TasksDone, rep.TasksFailed)
	}
	for task, st := range rep.TaskStatus {
		if st != fault.StatusFailed {
			t.Fatalf("task %d status %v, want failed", task, st)
		}
	}
	if rep.Makespan != 250 {
		t.Fatalf("makespan = %v, want 250 (up to the crash)", rep.Makespan)
	}
	if rep.TotalCost <= 0 {
		t.Fatalf("partial run must still bill the wasted uptime, got %v", rep.TotalCost)
	}
}

// TestZeroRateFaultParityExact: a fault injection with every rate zero
// reproduces internal/sim exactly — makespan, total cost, DC cost, VM
// count and per-task realized times, bit for bit.
func TestZeroRateFaultParityExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, s, p := randomOnlineCase(r)
		weights := sim.SampleWeights(w, rng.New(uint64(seed)))
		want, err1 := sim.Run(w, p, s, weights)
		spec := &fault.Spec{CrashRatePerHour: []float64{0, 0}, Seed: uint64(seed)}
		got, err2 := Execute(w, p, s, weights, Policy{Faults: spec.NewInjection()})
		if err1 != nil || err2 != nil {
			return (err1 == nil) == (err2 == nil)
		}
		if got.Makespan != want.Makespan || got.TotalCost != want.TotalCost ||
			got.DCCost != want.DCCost || got.NumVMs != want.NumVMs() {
			t.Logf("seed %d: makespan %v/%v cost %v/%v dc %v/%v vms %d/%d",
				seed, got.Makespan, want.Makespan, got.TotalCost, want.TotalCost,
				got.DCCost, want.DCCost, got.NumVMs, want.NumVMs())
			return false
		}
		if !got.Completed || got.TasksFailed != 0 || got.Crashes+got.BootFailures+got.TaskFailures != 0 {
			return false
		}
		for task := range got.Tasks {
			if got.Tasks[task] != want.Tasks[task] {
				t.Logf("seed %d task %d: times %+v vs %+v", seed, task, got.Tasks[task], want.Tasks[task])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFaultTraceDeterminism: identical seeds yield identical fault
// traces, recovery decisions and reports, for every recovery policy.
func TestFaultTraceDeterminism(t *testing.T) {
	kinds := []string{"retry-same", "resubmit-fastest", "replicate"}
	for i, seed := range []int64{1, 7, 42, 1234, 99991} {
		r := rand.New(rand.NewSource(seed))
		w, s, p := randomOnlineCase(r)
		weights := sim.SampleWeights(w, rng.New(uint64(seed)))
		spec := &fault.Spec{
			CrashRatePerHour: []float64{3},
			BootFailProb:     0.15,
			TaskFailProb:     0.1,
			Seed:             uint64(seed),
			Recovery:         kinds[i%len(kinds)],
			RebootBackoffSec: 3,
		}
		run := func() *Report {
			rep, err := Execute(w, p, s, weights, Policy{Budget: 1e9, Faults: spec.NewInjection()})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return rep
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d (%s): reports diverged:\n%+v\nvs\n%+v", seed, spec.Recovery, a, b)
		}
	}
}

// TestFaultInvariants: across random workflows, fault environments and
// budgets, the executor never errors, accounts every task exactly
// once, and keeps the report internally consistent.
func TestFaultInvariants(t *testing.T) {
	kinds := []string{"retry-same", "resubmit-fastest", "replicate"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w, s, p := randomOnlineCase(r)
		weights := sim.SampleWeights(w, rng.New(uint64(seed)))
		spec := &fault.Spec{
			CrashRatePerHour: []float64{r.Float64() * 5},
			BootFailProb:     r.Float64() * 0.3,
			TaskFailProb:     r.Float64() * 0.2,
			Seed:             uint64(seed),
			Recovery:         kinds[r.Intn(len(kinds))],
			MaxRetries:       1 + r.Intn(4),
			RebootBackoffSec: r.Float64() * 10,
		}
		var budget float64
		switch r.Intn(3) {
		case 0:
			budget = 0 // guard lifted
		case 1:
			budget = 1e12 // generous
		case 2:
			budget = 1 + r.Float64()*200 // tight: forces partial results
		}
		rep, err := Execute(w, p, s, weights, Policy{Budget: budget, Faults: spec.NewInjection()})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		n := w.NumTasks()
		if rep.TasksDone+rep.TasksFailed != n {
			t.Logf("seed %d: %d done + %d failed != %d tasks", seed, rep.TasksDone, rep.TasksFailed, n)
			return false
		}
		if rep.Completed != (rep.TasksFailed == 0) {
			return false
		}
		if len(rep.TaskStatus) != n {
			return false
		}
		doneN := 0
		for _, st := range rep.TaskStatus {
			if st == fault.StatusDone {
				doneN++
			}
		}
		if doneN != rep.TasksDone {
			t.Logf("seed %d: status says %d done, counter says %d", seed, doneN, rep.TasksDone)
			return false
		}
		if rep.Crashes+rep.BootFailures+rep.TaskFailures == 0 && !rep.Completed {
			t.Logf("seed %d: no failures yet incomplete", seed)
			return false
		}
		return rep.TotalCost >= rep.DCCost && rep.DCCost >= 0 &&
			rep.WastedSeconds >= 0 && rep.Makespan >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
