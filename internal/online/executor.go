package online

import (
	"fmt"
	"math"

	"budgetwf/internal/evloop"
	"budgetwf/internal/fault"
	"budgetwf/internal/obs"
	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/sim"
	"budgetwf/internal/wf"
)

type eventKind int

const (
	evBootDone eventKind = iota
	evStageDone
	evComputeDone
	evInterrupt
	evUploadDone
	evCrash
	evWake
)

type event struct {
	time  float64
	seq   int
	kind  eventKind
	vm    int
	task  wf.TaskID
	edge  int // evUploadDone
	epoch int // evStageDone/evComputeDone/evInterrupt: stale if the VM moved on
	useq  int // evUploadDone: stale if the upload was killed by a crash
}

// event implements evloop.Item so the executor's events can live
// either in its own loop (standalone) or in a host's loop (pooled).
func (e *event) When() float64  { return e.time }
func (e *event) EvSeq() int     { return e.seq }
func (e *event) SetEvSeq(s int) { e.seq = s }

// edgeState tracks where one edge's payload currently lives.
type edgeState int

const (
	edgePending   edgeState = iota // producer not finished yet
	edgeLocal                      // payload only on the producer's VM
	edgeUploading                  // on its way to the datacenter
	edgeAtDC                       // available at the datacenter
)

type ovm struct {
	cat          int
	queue        []wf.TaskID
	next         int
	booked       bool
	booting      bool
	bookTime     float64
	bootDone     float64
	busy         bool
	current      wf.TaskID
	computeStart float64
	computing    bool
	end          float64

	// Lease mechanics (hosted executions only). A leased VM comes from
	// the host's shared pool already booted: booking skips the boot
	// delay and billing charges lifetime *extensions* past the
	// already-paid billing units instead of a fresh Equation (1)
	// invoice. leaseAge is the VM's age — time since its original boot
	// completed — at the lease instant.
	leased   bool
	leaseAge float64

	// Fault mechanics. epoch invalidates the VM's in-flight activity
	// events (staging, compute, interrupt) when a crash or a replica
	// cancellation abandons them; crash events are validated against
	// dead instead, so cancelling an activity never cancels the crash.
	epoch      int
	notBefore  float64 // reboot backoff: earliest booking instant
	wakeQueued bool
	dead       bool
	bootFailed bool
	trace      fault.VMTrace
}

type executor struct {
	w       *wf.Workflow
	p       *platform.Platform
	weights []float64
	policy  Policy
	inj     *fault.Injection // nil: no fault injection
	span    *obs.Span        // nil: tracing disabled (Policy.Span)

	// now mirrors loop's clock (updated only through stepTo) so the
	// dispatch paths keep their e.now reads.
	now  float64
	loop evloop.Loop[*event]

	// Host hooks, all nil for a standalone execution. emit diverts
	// pushed events to the host's loop instead of the executor's own;
	// acquire offers an already-booted pooled VM at booking time;
	// onProvision observes every booking (fresh or leased) so the host
	// can account VMs against the submitting tenant.
	emit        func(*event)
	acquire     func(cat int, now float64) (Lease, bool)
	onProvision func(now float64, vm, cat int, leased bool, bootDone float64)

	vms    []ovm
	curVM  []int // current VM of each task (may change on migration/recovery)
	edges  []wf.Edge
	eState []edgeState
	eLocal []int // VM holding the payload while edgeLocal
	upSrc  []int // VM uploading the payload while edgeUploading
	upSeq  []int // upload generation; bumped when a crash kills the transfer
	inE    [][]int
	outE   [][]int

	done        []bool
	failed      []bool
	started     []bool
	finish      []float64
	migCount    []int
	attempts    []int // failure-recovery re-runs per task
	replicaVM   []int // second racing VM under Replicate, -1 if none
	extDone     []float64
	times       []sim.TaskTimes
	doneCount   int
	failedCount int
	fastest     int

	// xferCost accrues the inter-provider per-byte surcharge for every
	// transfer launched, at launch time; zero in the single-provider
	// model.
	xferCost float64

	report Report
}

func newExecutor(w *wf.Workflow, p *platform.Platform, s *plan.Schedule, weights []float64, policy Policy) (*executor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(w, p.NumCategories()); err != nil {
		return nil, err
	}
	for t, wt := range weights {
		if wt <= 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
			return nil, fmt.Errorf("online: task %d has invalid weight %v", t, wt)
		}
	}
	n := w.NumTasks()
	e := &executor{
		w: w, p: p, weights: weights, policy: policy,
		curVM:     append([]int(nil), s.TaskVM...),
		edges:     w.Edges(),
		done:      make([]bool, n),
		failed:    make([]bool, n),
		started:   make([]bool, n),
		finish:    make([]float64, n),
		migCount:  make([]int, n),
		attempts:  make([]int, n),
		replicaVM: make([]int, n),
		extDone:   make([]float64, n),
		times:     make([]sim.TaskTimes, n),
		fastest:   p.Fastest(),
	}
	// Migrations and fastest-category recoveries are reliability moves;
	// they never target preemptible capacity. The sibling has the same
	// speed, so this is a no-op on spot-free platforms.
	e.fastest = p.OnDemandSibling(e.fastest)
	if policy.Faults != nil && policy.Faults.Model != nil {
		e.inj = policy.Faults
	}
	e.span = policy.Span
	for t := range e.replicaVM {
		e.replicaVM[t] = -1
	}
	e.vms = make([]ovm, 0, s.NumVMs())
	for i := 0; i < s.NumVMs(); i++ {
		e.newVM(s.VMCats[i], s.Order[i], 0)
	}
	e.eState = make([]edgeState, len(e.edges))
	e.eLocal = make([]int, len(e.edges))
	e.upSrc = make([]int, len(e.edges))
	e.upSeq = make([]int, len(e.edges))
	e.inE = make([][]int, n)
	e.outE = make([][]int, n)
	for i, edge := range e.edges {
		e.inE[edge.To] = append(e.inE[edge.To], i)
		e.outE[edge.From] = append(e.outE[edge.From], i)
	}
	return e, nil
}

// newVM appends a VM and samples its fault trace; traces are consumed
// in provisioning order, so the i-th VM's fate is a pure function of
// the fault seed and i.
func (e *executor) newVM(cat int, queue []wf.TaskID, notBefore float64) int {
	nv := len(e.vms)
	vm := ovm{cat: cat, queue: append([]wf.TaskID(nil), queue...), notBefore: notBefore}
	if e.inj != nil {
		vm.trace = e.inj.Model.NewVM(cat)
	}
	e.vms = append(e.vms, vm)
	return nv
}

func (e *executor) push(ev *event) {
	if e.emit != nil {
		e.emit(ev)
		return
	}
	e.loop.Push(ev)
}

// stepTo advances the executor's clock to an event's instant.
func (e *executor) stepTo(t float64) error {
	if err := e.loop.Advance(t); err != nil {
		return fmt.Errorf("online: %w", err)
	}
	e.now = e.loop.Now()
	return nil
}

// tryAdvance moves VM v forward if its head task can progress.
func (e *executor) tryAdvance(v int) {
	vm := &e.vms[v]
	if vm.dead || vm.busy || vm.booting || vm.next >= len(vm.queue) {
		return
	}
	t := vm.queue[vm.next]
	if e.done[t] || e.failed[t] || (e.curVM[t] != v && e.replicaVM[t] != v) {
		// Finished elsewhere, abandoned, or migrated away; skip it.
		vm.next++
		e.tryAdvance(v)
		return
	}
	stage := e.w.Task(t).ExternalIn
	for _, ei := range e.inE[t] {
		switch e.eState[ei] {
		case edgePending, edgeUploading:
			return // wait for the producer / the upload
		case edgeLocal:
			if e.eLocal[ei] != v {
				src := e.eLocal[ei]
				if e.vms[src].dead {
					// The payload died with its VM; wait for the
					// producer's recovery to replace it.
					return
				}
				// Data sits on another VM: ship it via the datacenter.
				srcCat := e.vms[src].cat
				e.eState[ei] = edgeUploading
				e.upSrc[ei] = src
				e.xferCost += e.edges[ei].Size * e.p.XferCost(srcCat)
				e.push(&event{time: e.now + e.p.XferLat(srcCat) + e.edges[ei].Size/e.p.CatBandwidth(srcCat), kind: evUploadDone, edge: ei, useq: e.upSeq[ei]})
				return
			}
		case edgeAtDC:
			stage += e.edges[ei].Size
		}
	}
	if !vm.booked {
		if e.now < vm.notBefore {
			// Reboot backoff: inputs are ready but the replacement VM
			// may not be booked yet.
			if !vm.wakeQueued {
				vm.wakeQueued = true
				e.push(&event{time: vm.notBefore, kind: evWake, vm: v})
			}
			return
		}
		vm.booked = true
		vm.booting = true
		vm.bookTime = e.now
		if e.acquire != nil && e.inj == nil {
			// A pooled VM is already booted: the lease takes effect
			// immediately, and evBootDone fires at the current instant so
			// the dispatch sequence keeps its shape.
			if lease, ok := e.acquire(vm.cat, e.now); ok {
				vm.leased = true
				vm.leaseAge = lease.Age
				vm.bootDone = e.now
				e.push(&event{time: vm.bootDone, kind: evBootDone, vm: v})
				if e.onProvision != nil {
					e.onProvision(e.now, v, vm.cat, true, vm.bootDone)
				}
				return
			}
		}
		vm.bootDone = e.now + e.p.CatBootTime(vm.cat)
		e.push(&event{time: vm.bootDone, kind: evBootDone, vm: v})
		if e.onProvision != nil {
			e.onProvision(e.now, v, vm.cat, false, vm.bootDone)
		}
		return
	}
	vm.busy = true
	vm.current = t
	e.started[t] = true
	e.times[t].StageStart = e.now
	if stage > 0 {
		e.xferCost += stage * e.p.XferCost(vm.cat)
		e.push(&event{time: e.now + e.p.XferLat(vm.cat) + stage/e.p.CatBandwidth(vm.cat), kind: evStageDone, vm: v, task: t, epoch: vm.epoch})
		return
	}
	e.startCompute(v, t)
}

func (e *executor) startCompute(v int, t wf.TaskID) {
	vm := &e.vms[v]
	vm.computing = true
	vm.computeStart = e.now
	e.times[t].ComputeStart = e.now
	speed := e.p.Categories[vm.cat].Speed
	dur := e.weights[t] / speed
	if timeout, ok := e.timeoutFor(v, t); ok && dur > timeout {
		e.push(&event{time: e.now + timeout, kind: evInterrupt, vm: v, task: t, epoch: vm.epoch})
		return
	}
	e.push(&event{time: e.now + dur, kind: evComputeDone, vm: v, task: t, epoch: vm.epoch})
}

// timeoutFor returns the monitoring timeout of task t on VM v, if
// monitoring applies there.
func (e *executor) timeoutFor(v int, t wf.TaskID) (float64, bool) {
	if e.policy.TimeoutSigma <= 0 {
		return 0, false
	}
	vm := &e.vms[v]
	if vm.cat == e.fastest {
		return 0, false // nowhere faster to go
	}
	if e.migCount[t] >= e.policy.maxMigrations() {
		return 0, false
	}
	if e.replicaVM[t] >= 0 {
		return 0, false // a replica is already hedging this task
	}
	task := e.w.Task(t)
	quantile := task.Weight.Mean + e.policy.TimeoutSigma*task.Weight.Sigma
	timeout := quantile / e.p.Categories[vm.cat].Speed
	if g := e.policy.GainFactor; g > 0 {
		// The gain rule: never interrupt before the task has consumed
		// at least γ× what a fastest-category restart would cost.
		inBytes := task.ExternalIn
		for _, ei := range e.inE[t] {
			inBytes += e.edges[ei].Size
		}
		restart := e.p.CatBootTime(e.fastest) + inBytes/e.p.CatBandwidth(e.fastest) + quantile/e.p.Categories[e.fastest].Speed
		if floor := g * restart; floor > timeout {
			timeout = floor
		}
	}
	return timeout, true
}

func (e *executor) finishCompute(v int, t wf.TaskID) {
	vm := &e.vms[v]
	vm.busy = false
	vm.computing = false
	vm.next++
	e.done[t] = true
	e.doneCount++
	e.finish[t] = e.now
	e.times[t].Finish = e.now
	if e.now > vm.end {
		vm.end = e.now
	}
	if rv := e.replicaVM[t]; rv >= 0 {
		// First finisher wins; the losing replica is cancelled.
		other := rv
		if other == v {
			other = e.curVM[t]
		}
		e.replicaVM[t] = -1
		e.curVM[t] = v
		e.cancelReplica(other, t)
	}
	for _, ei := range e.outE[t] {
		edge := e.edges[ei]
		if e.eState[ei] == edgeAtDC {
			continue // checkpointed at the DC by an earlier run
		}
		if e.curVM[edge.To] == v {
			e.eState[ei] = edgeLocal
			e.eLocal[ei] = v
			continue
		}
		if edge.Size == 0 {
			e.eState[ei] = edgeAtDC
			continue
		}
		e.eState[ei] = edgeUploading
		e.upSrc[ei] = v
		e.xferCost += edge.Size * e.p.XferCost(vm.cat)
		e.push(&event{time: e.now + e.p.XferLat(vm.cat) + edge.Size/e.p.CatBandwidth(vm.cat), kind: evUploadDone, edge: ei, useq: e.upSeq[ei]})
	}
	if out := e.w.Task(t).ExternalOut; out > 0 {
		e.xferCost += out * e.p.XferCost(vm.cat)
		arr := e.now + e.p.XferLat(vm.cat) + out/e.p.CatBandwidth(vm.cat)
		e.extDone[t] = arr
		if arr > vm.end {
			vm.end = arr
		}
	}
	e.tryAdvanceAll()
}

// cancelReplica stops the losing copy of a replicated task. Time it
// already burned stays billed; its VM proceeds with its queue.
func (e *executor) cancelReplica(v int, t wf.TaskID) {
	vm := &e.vms[v]
	if vm.dead {
		return
	}
	if vm.busy && vm.current == t {
		vm.epoch++
		if vm.computing {
			e.report.WastedSeconds += e.now - vm.computeStart
		}
		vm.busy = false
		vm.computing = false
		vm.next++
		if e.now > vm.end {
			vm.end = e.now
		}
	}
	// If it was merely queued, tryAdvance skips the finished task.
}

// abandonCurrent frees a VM whose in-flight task no longer needs it
// (finished by a replica or declared failed while running).
func (e *executor) abandonCurrent(v int) {
	vm := &e.vms[v]
	if vm.busy {
		vm.busy = false
		vm.computing = false
		vm.next++
		if e.now > vm.end {
			vm.end = e.now
		}
	}
	e.tryAdvance(v)
}

// interrupt handles a fired timeout: migrate to a fresh fastest-class
// VM, unless the budget guard vetoes it.
func (e *executor) interrupt(v int, t wf.TaskID) {
	vm := &e.vms[v]
	dur := e.weights[t] / e.p.Categories[vm.cat].Speed
	plan := []vmPlan{{cat: e.fastest, tasks: []wf.TaskID{t}}}
	if e.policy.Budget > 0 && e.projectedCost(plan, []wf.TaskID{t}) > e.policy.Budget {
		e.report.Vetoed++
		if e.span != nil {
			e.span.Event("migration-vetoed",
				obs.Int("task", int(t)), obs.Int("vm", v), obs.Float("at", e.now))
		}
		e.push(&event{time: vm.computeStart + dur, kind: evComputeDone, vm: v, task: t, epoch: vm.epoch})
		return
	}
	// Abandon the computation: the VM proceeds with its queue.
	wasted := e.now - vm.computeStart
	vm.busy = false
	vm.computing = false
	vm.next++
	if e.now > vm.end {
		vm.end = e.now
	}
	e.migCount[t]++
	nv := e.newVM(e.fastest, []wf.TaskID{t}, 0)
	e.curVM[t] = nv
	e.report.Migrations = append(e.report.Migrations, Migration{
		Task: t, FromVM: v, ToVM: nv, At: e.now, Wasted: wasted,
	})
	if e.span != nil {
		e.span.Event("migration",
			obs.Int("task", int(t)), obs.Int("fromVM", v), obs.Int("toVM", nv),
			obs.Float("at", e.now), obs.Float("wasted", wasted))
	}
	e.tryAdvanceAll()
}

// vmInvoice is the billed cost of one VM alive through end: a fresh VM
// pays Equation (1) in full, while a leased pooled VM pays only the
// billing units beyond those its previous holders already covered.
func (e *executor) vmInvoice(vm *ovm, end float64) float64 {
	if vm.leased {
		return e.p.ExtensionCost(vm.cat, vm.leaseAge, vm.leaseAge+(end-vm.bootDone))
	}
	return e.p.VMCost(vm.cat, vm.bootDone, end)
}

// vmPlan describes one prospective VM for the cost projection.
type vmPlan struct {
	cat   int
	tasks []wf.TaskID
}

// projectedCost estimates the final invoice if the planned VMs are
// booked now. The estimate is deliberately conservative: every
// already-booked VM is billed to at least the current instant plus the
// conservative cost of the work still queued on it (excluding the
// tasks being moved), the fixed external traffic is charged in full,
// and each planned VM pays its setup fee, staging, the conservative
// compute times and its output shipments.
func (e *executor) projectedCost(plans []vmPlan, exclude []wf.TaskID) float64 {
	excluded := func(t wf.TaskID) bool {
		for _, x := range exclude {
			if x == t {
				return true
			}
		}
		return false
	}
	total := 0.0
	firstBook := math.Inf(1)
	for i := range e.vms {
		vm := &e.vms[i]
		if !vm.booked {
			continue
		}
		if vm.bookTime < firstBook {
			firstBook = vm.bookTime
		}
		if vm.bootFailed {
			total += e.p.Categories[vm.cat].InitCost
			continue
		}
		end := vm.end
		if !vm.dead && end < e.now {
			end = e.now
		}
		total += e.vmInvoice(vm, end)
		if vm.dead {
			continue // no future work runs here
		}
		// Work still committed to this VM: queued unfinished tasks at
		// their conservative estimates, plus input staging.
		cat := e.p.Categories[vm.cat]
		for qi := vm.next; qi < len(vm.queue); qi++ {
			u := vm.queue[qi]
			if e.done[u] || e.failed[u] || e.curVM[u] != i || excluded(u) {
				continue
			}
			task := e.w.Task(u)
			inBytes := task.ExternalIn
			for _, ei := range e.inE[u] {
				if e.eState[ei] != edgeLocal || e.eLocal[ei] != i {
					inBytes += e.edges[ei].Size
				}
			}
			total += (inBytes/e.p.CatBandwidth(vm.cat) + task.Weight.Conservative()/cat.Speed) * cat.CostPerSec
		}
	}
	if math.IsInf(firstBook, 1) {
		firstBook = 0
	}
	maxNew := 0.0
	for _, pl := range plans {
		cat := e.p.Categories[pl.cat]
		work := 0.0
		for _, t := range pl.tasks {
			task := e.w.Task(t)
			inBytes := task.ExternalIn
			for _, ei := range e.inE[t] {
				inBytes += e.edges[ei].Size
			}
			outBytes := task.ExternalOut
			for _, ei := range e.outE[t] {
				outBytes += e.edges[ei].Size
			}
			work += (inBytes+outBytes)/e.p.CatBandwidth(pl.cat) + task.Weight.Conservative()/cat.Speed
		}
		total += work*cat.CostPerSec + cat.InitCost
		if work > maxNew {
			maxNew = work
		}
	}
	ext := e.w.ExternalInSize() + e.w.ExternalOutSize()
	span := e.now + e.p.BootTime + maxNew - firstBook
	total += e.p.DCCost(ext, 0, 0, 0) // transfer part only
	total += span * e.p.DCCostPerSec
	// The inter-provider surcharge already incurred counts against the
	// budget like any other sunk cost; zero in the single-provider model.
	total += e.xferCost
	return total
}

// bootFailure handles a boot attempt that the fault trace doomed. Only
// the setup fee is billed (boot time itself is uncharged in the cost
// model), and every task queued on the VM goes through recovery.
func (e *executor) bootFailure(v int) {
	vm := &e.vms[v]
	e.report.BootFailures++
	vm.dead = true
	vm.bootFailed = true
	vm.epoch++
	vm.end = vm.bookTime
	if e.span != nil {
		e.span.Event("boot-failure",
			obs.Int("vm", v), obs.Int("cat", vm.cat), obs.Float("at", e.now))
	}
	lost := e.collectLost(v, e.now)
	e.recoverLost(v, lost)
}

// handleCrash kills VM v at instant tc: in-progress work and data that
// never reached the datacenter are lost; the uptime — useful or not —
// stays billed.
func (e *executor) handleCrash(v int, tc float64) {
	vm := &e.vms[v]
	if !vm.busy {
		// Skip queue entries that no longer concern this VM before
		// deciding whether it still had work.
		for vm.next < len(vm.queue) {
			t := vm.queue[vm.next]
			if e.done[t] || e.failed[t] || (e.curVM[t] != v && e.replicaVM[t] != v) {
				vm.next++
				continue
			}
			break
		}
	}
	if !vm.busy && vm.next >= len(vm.queue) {
		// The VM had already drained its queue and was released at its
		// last activity; the crash strikes air.
		return
	}
	// A spot VM's death is a revocation — the priced preemption event of
	// the market model — not an infrastructure crash: it is counted (and
	// traced) separately, and the billing it wastes accrues to the spot
	// rework account the spot planner's budget guard reserved for.
	spot := e.p.Categories[vm.cat].Spot
	wasted := 0.0
	if vm.busy {
		wasted = tc - e.times[vm.current].StageStart
	} else if w := tc - math.Max(vm.bootDone, vm.end); w > 0 {
		wasted = w
	}
	if spot {
		e.report.Revocations++
		e.report.SpotReworkCost += wasted * e.p.Categories[vm.cat].CostPerSec
	} else {
		e.report.Crashes++
	}
	e.report.WastedSeconds += wasted
	vm.dead = true
	vm.epoch++
	vm.busy = false
	vm.computing = false
	vm.end = tc // the wasted uptime is billed
	// In-flight uploads sourced here die with the machine.
	for ei := range e.edges {
		if e.eState[ei] == edgeUploading && e.upSrc[ei] == v {
			e.eState[ei] = edgePending
			e.upSeq[ei]++
		}
	}
	lost := e.collectLost(v, tc)
	if e.span != nil {
		name := "crash"
		if spot {
			name = "revocation"
		}
		e.span.Event(name,
			obs.Int("vm", v), obs.Int("cat", vm.cat), obs.Float("at", tc),
			obs.Int("tasksLost", len(lost)))
	}
	e.recoverLost(v, lost)
}

// collectLost computes which of VM v's tasks the failure destroyed, in
// queue (precedence) order. A finished task is lost when any of its
// outputs existed only on v: an output still local to v whose consumer
// has not finished, an upload the crash killed, or an external output
// still in flight at tc. Outputs already at the datacenter survive —
// checkpoint-on-upload — so their producers do not re-run. Unfinished
// tasks assigned to v are lost unless a live replica still carries
// them.
func (e *executor) collectLost(v int, tc float64) []wf.TaskID {
	vm := &e.vms[v]
	lostFlag := make(map[wf.TaskID]bool)
	// Walk the queue in reverse so each finished producer sees the
	// verdict of its same-VM consumers (which sit later in the queue).
	for i := len(vm.queue) - 1; i >= 0; i-- {
		t := vm.queue[i]
		if e.failed[t] {
			continue
		}
		owns, isReplica := e.curVM[t] == v, e.replicaVM[t] == v
		if !owns && !isReplica {
			continue
		}
		if !e.done[t] {
			if isReplica {
				e.replicaVM[t] = -1 // the primary copy lives on
				continue
			}
			if rv := e.replicaVM[t]; rv >= 0 && !e.vms[rv].dead {
				e.curVM[t] = rv // the replica takes over
				e.replicaVM[t] = -1
				continue
			}
			e.replicaVM[t] = -1
			lostFlag[t] = true
			continue
		}
		task := e.w.Task(t)
		lost := task.ExternalOut > 0 && e.extDone[t] > tc
		for _, ei := range e.outE[t] {
			switch e.eState[ei] {
			case edgeAtDC:
				// safe: the DC copy survives
			case edgePending:
				lost = true // the crash just killed this upload
			case edgeLocal:
				if e.eLocal[ei] != v {
					break
				}
				u := e.edges[ei].To
				if (!e.done[u] && !e.failed[u]) || lostFlag[u] {
					lost = true
				}
			}
		}
		if lost {
			lostFlag[t] = true
		}
	}
	var out []wf.TaskID
	for _, t := range vm.queue {
		if lostFlag[t] {
			out = append(out, t)
		}
	}
	return out
}

// resetTask rolls a lost task back to not-run. Outputs already at the
// datacenter are kept; everything else returns to pending.
func (e *executor) resetTask(t wf.TaskID) {
	if e.done[t] {
		e.done[t] = false
		e.doneCount--
	}
	for _, ei := range e.outE[t] {
		if e.eState[ei] == edgeAtDC {
			// checkpoint-on-upload: DC copies survive and feed consumers
			// without re-running the producer.
			if e.span != nil {
				e.span.Event("checkpoint-restore",
					obs.Int("task", int(t)), obs.Int("consumer", int(e.edges[ei].To)),
					obs.Float("at", e.now))
			}
			continue
		}
		e.eState[ei] = edgePending
		e.upSeq[ei]++
	}
}

// failTask declares t permanently failed and cascades to every
// descendant that can no longer obtain its inputs. Consumers whose
// edge payload already reached the datacenter are spared.
func (e *executor) failTask(t wf.TaskID) {
	if e.failed[t] {
		return
	}
	if e.done[t] {
		e.done[t] = false
		e.doneCount--
	}
	e.failed[t] = true
	e.failedCount++
	e.replicaVM[t] = -1
	for _, ei := range e.outE[t] {
		if e.eState[ei] == edgeAtDC {
			continue // the checkpointed copy still feeds the consumer
		}
		u := e.edges[ei].To
		if !e.done[u] && !e.failed[u] {
			e.failTask(u)
		}
	}
}

// recoverLost applies the recovery policy to the tasks a dead VM took
// down. Tasks over their retry allowance fail permanently; the rest
// are re-provisioned unless the budget guard projects the recovery to
// bust the budget, in which case they fail too and the execution
// degrades to a partial result.
func (e *executor) recoverLost(v int, lost []wf.TaskID) {
	if len(lost) == 0 {
		e.tryAdvanceAll()
		return
	}
	rec := e.inj.Recovery
	// Roll the whole batch back first: a permanent failure decided
	// below must see its lost consumers as pending — not still done —
	// so its cascade takes them down with it.
	for _, t := range lost {
		e.attempts[t]++
		if e.span != nil {
			e.span.Event("task-lost",
				obs.Int("task", int(t)), obs.Int("vm", v),
				obs.Int("attempt", e.attempts[t]), obs.Float("at", e.now))
		}
		e.resetTask(t)
	}
	maxAttempt := 0
	var retry []wf.TaskID
	for _, t := range lost {
		if e.failed[t] {
			continue // an exhausted ancestor's cascade got it
		}
		if e.attempts[t] > rec.Retries() {
			e.failTask(t)
			continue
		}
		if e.attempts[t] > maxAttempt {
			maxAttempt = e.attempts[t]
		}
		retry = append(retry, t)
	}
	if len(retry) == 0 {
		e.tryAdvanceAll()
		return
	}
	sameCat := e.vms[v].cat
	if e.p.Categories[sameCat].Spot {
		// Resubmit-on-revoke: a revoked spot VM's work moves to the
		// category's on-demand sibling (same speed, same provider), so a
		// repeat revocation cannot strike the same batch again.
		sib := e.p.OnDemandSibling(sameCat)
		if e.span != nil {
			e.span.Event("spot-resubmit",
				obs.Int("vm", v), obs.Int("fromCat", sameCat), obs.Int("toCat", sib),
				obs.Int("tasks", len(retry)), obs.Float("at", e.now))
		}
		sameCat = sib
	}
	var plans []vmPlan
	switch rec.Kind {
	case fault.ResubmitFastest:
		plans = []vmPlan{{cat: e.fastest, tasks: retry}}
	case fault.Replicate:
		plans = []vmPlan{{cat: sameCat, tasks: retry}, {cat: e.fastest, tasks: retry}}
	default: // RetrySame
		plans = []vmPlan{{cat: sameCat, tasks: retry}}
	}
	if e.policy.Budget > 0 && e.projectedCost(plans, retry) > e.policy.Budget {
		e.report.RecoveriesVetoed++
		if e.span != nil {
			e.span.Event("recovery-vetoed",
				obs.Str("policy", rec.Kind.String()), obs.Int("tasks", len(retry)),
				obs.Float("at", e.now))
		}
		for _, t := range retry {
			e.failTask(t)
		}
		e.tryAdvanceAll()
		return
	}
	e.report.Recoveries++
	if e.p.Categories[e.vms[v].cat].Spot {
		// The replacement VMs' setup fees are rework the revocation
		// caused: exactly the resubmit reserve the spot planner priced in.
		for _, pl := range plans {
			e.report.SpotReworkCost += e.p.Categories[pl.cat].InitCost
		}
	}
	backoff := rec.Backoff(maxAttempt)
	if e.span != nil {
		e.span.Event("recovery",
			obs.Str("policy", rec.Kind.String()), obs.Int("tasks", len(retry)),
			obs.Float("backoff", backoff), obs.Float("at", e.now))
	}
	switch rec.Kind {
	case fault.ResubmitFastest:
		nv := e.newVM(e.fastest, retry, e.now)
		for _, t := range retry {
			e.curVM[t] = nv
		}
	case fault.Replicate:
		a := e.newVM(sameCat, retry, e.now+backoff)
		b := e.newVM(e.fastest, retry, e.now)
		for _, t := range retry {
			e.curVM[t] = a
			e.replicaVM[t] = b
		}
	default: // RetrySame
		nv := e.newVM(sameCat, retry, e.now+backoff)
		for _, t := range retry {
			e.curVM[t] = nv
		}
	}
	e.tryAdvanceAll()
}

// taskFailure handles a transient execution failure at the instant the
// task would have completed: the compute time is wasted (and billed)
// and the task retries in place, subject to the retry allowance and
// the budget guard.
func (e *executor) taskFailure(v int, t wf.TaskID) {
	vm := &e.vms[v]
	e.report.TaskFailures++
	e.report.WastedSeconds += e.now - vm.computeStart
	if e.now > vm.end {
		vm.end = e.now
	}
	e.attempts[t]++
	retryable := e.attempts[t] <= e.inj.Recovery.Retries()
	if retryable && e.policy.Budget > 0 && e.projectedCost(nil, nil) > e.policy.Budget {
		e.report.RecoveriesVetoed++
		retryable = false
	}
	if e.span != nil {
		e.span.Event("task-failure",
			obs.Int("task", int(t)), obs.Int("vm", v),
			obs.Int("attempt", e.attempts[t]), obs.Bool("retrying", retryable),
			obs.Float("at", e.now))
	}
	if !retryable {
		// Abandon this copy; a racing replica may still win.
		vm.busy = false
		vm.computing = false
		vm.next++
		if rv := e.replicaVM[t]; rv >= 0 {
			if e.curVM[t] == v {
				e.curVM[t] = rv
			}
			e.replicaVM[t] = -1
		} else {
			e.failTask(t)
		}
		e.tryAdvanceAll()
		return
	}
	e.startCompute(v, t)
}

func (e *executor) tryAdvanceAll() {
	for v := range e.vms {
		e.tryAdvance(v)
	}
}

// maxSteps bounds the dispatch count of one execution; exceeding it
// means a livelock, not a long workflow.
func (e *executor) maxSteps() int {
	retries := 0
	if e.inj != nil {
		retries = e.inj.Recovery.Retries()
	}
	n := e.w.NumTasks()
	return 64 * (n + len(e.edges) + len(e.vms) + 16) * (e.policy.maxMigrations() + 1) * (retries + 1)
}

// settled reports whether every task has reached a terminal state.
func (e *executor) settled() bool {
	return e.doneCount+e.failedCount >= e.w.NumTasks()
}

func (e *executor) run() (*Report, error) {
	n := e.w.NumTasks()
	e.tryAdvanceAll()
	guard := 0
	for !e.settled() {
		guard++
		if maxSteps := e.maxSteps(); guard > maxSteps {
			return nil, fmt.Errorf("online: exceeded %d steps; execution is livelocked", maxSteps)
		}
		if e.loop.Len() == 0 {
			return nil, fmt.Errorf("online: deadlock with %d/%d tasks finished\n%s", e.doneCount, n, e.stateDump())
		}
		ev, _ := e.loop.Pop()
		if err := e.stepTo(ev.time); err != nil {
			return nil, err
		}
		e.dispatch(ev)
	}
	if e.inj != nil {
		e.drainUploads()
	}
	return e.collect(), nil
}

// dispatch handles one event at the current instant: the state machine
// shared verbatim between the standalone run loop and a hosted
// (pooled) execution, which is what keeps the two bit-identical.
func (e *executor) dispatch(ev *event) {
	switch ev.kind {
	case evBootDone:
		vm := &e.vms[ev.vm]
		vm.booting = false
		if vm.trace != nil && vm.trace.BootFails() {
			e.bootFailure(ev.vm)
			break
		}
		if vm.trace != nil {
			if ttc := vm.trace.TimeToCrash(); !math.IsInf(ttc, 1) {
				e.push(&event{time: vm.bootDone + ttc, kind: evCrash, vm: ev.vm})
			}
		}
		e.tryAdvance(ev.vm)
	case evStageDone:
		if ev.epoch != e.vms[ev.vm].epoch {
			break
		}
		if e.done[ev.task] || e.failed[ev.task] {
			e.abandonCurrent(ev.vm)
			break
		}
		e.startCompute(ev.vm, ev.task)
	case evComputeDone:
		vm := &e.vms[ev.vm]
		if ev.epoch != vm.epoch {
			break
		}
		if e.done[ev.task] || e.failed[ev.task] {
			e.abandonCurrent(ev.vm)
			break
		}
		if vm.trace != nil && vm.trace.TaskFails() {
			e.taskFailure(ev.vm, ev.task)
			break
		}
		e.finishCompute(ev.vm, ev.task)
	case evInterrupt:
		vm := &e.vms[ev.vm]
		if ev.epoch != vm.epoch || !vm.computing || vm.current != ev.task {
			break
		}
		e.interrupt(ev.vm, ev.task)
	case evCrash:
		if e.vms[ev.vm].dead {
			break
		}
		e.handleCrash(ev.vm, e.now)
	case evWake:
		e.vms[ev.vm].wakeQueued = false
		if !e.vms[ev.vm].dead {
			e.tryAdvance(ev.vm)
		}
	case evUploadDone:
		ei := ev.edge
		if ev.useq != e.upSeq[ei] || e.eState[ei] != edgeUploading {
			break // a crash killed this transfer
		}
		e.eState[ei] = edgeAtDC
		src := e.upSrc[ei]
		if e.vms[src].end < e.now {
			e.vms[src].end = e.now
		}
		e.tryAdvanceAll()
	}
}

// drainUploads settles transfers still in flight when the last task
// settled (possible when consumers failed permanently): the source VM
// stays billed until its uplink is free.
func (e *executor) drainUploads() {
	for e.loop.Len() > 0 {
		ev, _ := e.loop.Pop()
		if ev.kind != evUploadDone {
			continue
		}
		ei := ev.edge
		if ev.useq != e.upSeq[ei] || e.eState[ei] != edgeUploading {
			continue
		}
		if ev.time > e.now {
			e.now = ev.time
		}
		e.eState[ei] = edgeAtDC
		src := e.upSrc[ei]
		if e.vms[src].end < e.now {
			e.vms[src].end = e.now
		}
	}
}

func (e *executor) collect() *Report {
	r := &e.report
	n := e.w.NumTasks()
	firstBook := math.Inf(1)
	lastEvent := 0.0
	for i := range e.vms {
		vm := &e.vms[i]
		if !vm.booked {
			continue
		}
		r.NumVMs++
		if e.p.Categories[vm.cat].Spot {
			r.SpotVMs++
		}
		if vm.bookTime < firstBook {
			firstBook = vm.bookTime
		}
		if vm.bootFailed {
			// Boot never completed: only the setup fee is due.
			r.TotalCost += e.p.Categories[vm.cat].InitCost
			if e.p.Categories[vm.cat].Spot {
				r.SpotCost += e.p.Categories[vm.cat].InitCost
			}
			continue
		}
		invoice := e.vmInvoice(vm, vm.end)
		r.TotalCost += invoice
		if e.p.Categories[vm.cat].Spot {
			r.SpotCost += invoice
		}
		if vm.end > lastEvent {
			lastEvent = vm.end
		}
	}
	if math.IsInf(firstBook, 1) {
		firstBook = 0
	}
	if lastEvent < firstBook {
		lastEvent = firstBook
	}
	extIn, extOut := e.w.ExternalInSize(), e.w.ExternalOutSize()
	if e.failedCount > 0 {
		// Partial completion: only traffic that actually flowed is due.
		extIn, extOut = 0, 0
		for t := 0; t < n; t++ {
			task := e.w.Task(wf.TaskID(t))
			if e.started[t] {
				extIn += task.ExternalIn
			}
			if e.done[t] {
				extOut += task.ExternalOut
			}
		}
	}
	r.DCCost = e.p.DCCost(extIn, extOut, firstBook, lastEvent)
	r.TotalCost += r.DCCost
	r.XferCost = e.xferCost
	r.TotalCost += r.XferCost
	r.Makespan = lastEvent - firstBook
	r.Completed = e.failedCount == 0
	r.TasksDone = e.doneCount
	r.TasksFailed = e.failedCount
	r.TaskStatus = make([]fault.TaskStatus, n)
	for t := range r.TaskStatus {
		if !e.done[t] {
			r.TaskStatus[t] = fault.StatusFailed
		}
	}
	r.Tasks = append([]sim.TaskTimes(nil), e.times...)
	if e.span != nil {
		e.span.Set(
			obs.Float("makespan", r.Makespan), obs.Float("cost", r.TotalCost),
			obs.Int("vms", r.NumVMs), obs.Bool("completed", r.Completed),
			obs.Int("tasksDone", r.TasksDone), obs.Int("tasksFailed", r.TasksFailed),
			obs.Int("crashes", r.Crashes), obs.Int("bootFailures", r.BootFailures),
			obs.Int("taskFailures", r.TaskFailures), obs.Int("recoveries", r.Recoveries),
			obs.Int("recoveriesVetoed", r.RecoveriesVetoed),
			obs.Int("migrations", len(r.Migrations)), obs.Int("migrationsVetoed", r.Vetoed),
			obs.Float("wastedSeconds", r.WastedSeconds))
		if e.p.HasSpot() {
			e.span.Set(
				obs.Int("spotVMs", r.SpotVMs), obs.Int("revocations", r.Revocations),
				obs.Float("spotCost", r.SpotCost), obs.Float("spotReworkCost", r.SpotReworkCost))
		}
	}
	return r
}

func (e *executor) stateDump() string {
	s := ""
	for t := 0; t < e.w.NumTasks(); t++ {
		if e.done[t] || e.failed[t] {
			continue
		}
		s += fmt.Sprintf("task %d: cur=%d rep=%d att=%d\n", t, e.curVM[t], e.replicaVM[t], e.attempts[t])
	}
	for v := range e.vms {
		vm := &e.vms[v]
		s += fmt.Sprintf("vm %d: cat=%d booked=%v booting=%v busy=%v dead=%v bf=%v next=%d/%d nb=%v wq=%v q=%v\n",
			v, vm.cat, vm.booked, vm.booting, vm.busy, vm.dead, vm.bootFailed, vm.next, len(vm.queue), vm.notBefore, vm.wakeQueued, vm.queue)
	}
	for ei, st := range e.eState {
		s += fmt.Sprintf("edge %d %d->%d: st=%d loc=%d src=%d\n", ei, e.edges[ei].From, e.edges[ei].To, st, e.eLocal[ei], e.upSrc[ei])
	}
	return s
}
