package online

import (
	"container/heap"
	"fmt"
	"math"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/wf"
)

type eventKind int

const (
	evBootDone eventKind = iota
	evStageDone
	evComputeDone
	evInterrupt
	evUploadDone
)

type event struct {
	time float64
	seq  int
	kind eventKind
	vm   int
	task wf.TaskID
	edge int // evUploadDone
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// edgeState tracks where one edge's payload currently lives.
type edgeState int

const (
	edgePending   edgeState = iota // producer not finished yet
	edgeLocal                      // payload only on the producer's VM
	edgeUploading                  // on its way to the datacenter
	edgeAtDC                       // available at the datacenter
)

type ovm struct {
	cat          int
	queue        []wf.TaskID
	next         int
	booked       bool
	booting      bool
	bookTime     float64
	bootDone     float64
	busy         bool
	current      wf.TaskID
	computeStart float64
	computing    bool
	end          float64
}

type executor struct {
	w       *wf.Workflow
	p       *platform.Platform
	weights []float64
	policy  Policy

	now    float64
	seq    int
	events eventHeap

	vms    []ovm
	curVM  []int // current VM of each task (may change on migration)
	edges  []wf.Edge
	eState []edgeState
	eLocal []int // VM holding the payload while edgeLocal
	inE    [][]int
	outE   [][]int

	done      []bool
	finish    []float64
	migCount  []int
	doneCount int
	maxTime   float64
	fastest   int

	report Report
}

func newExecutor(w *wf.Workflow, p *platform.Platform, s *plan.Schedule, weights []float64, policy Policy) (*executor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(w, p.NumCategories()); err != nil {
		return nil, err
	}
	for t, wt := range weights {
		if wt <= 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
			return nil, fmt.Errorf("online: task %d has invalid weight %v", t, wt)
		}
	}
	n := w.NumTasks()
	e := &executor{
		w: w, p: p, weights: weights, policy: policy,
		curVM:    append([]int(nil), s.TaskVM...),
		edges:    w.Edges(),
		done:     make([]bool, n),
		finish:   make([]float64, n),
		migCount: make([]int, n),
		fastest:  p.Fastest(),
	}
	e.vms = make([]ovm, s.NumVMs())
	for i := range e.vms {
		e.vms[i] = ovm{cat: s.VMCats[i], queue: append([]wf.TaskID(nil), s.Order[i]...)}
	}
	e.eState = make([]edgeState, len(e.edges))
	e.eLocal = make([]int, len(e.edges))
	e.inE = make([][]int, n)
	e.outE = make([][]int, n)
	for i, edge := range e.edges {
		e.inE[edge.To] = append(e.inE[edge.To], i)
		e.outE[edge.From] = append(e.outE[edge.From], i)
	}
	return e, nil
}

func (e *executor) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

func (e *executor) bump(t float64) {
	if t > e.maxTime {
		e.maxTime = t
	}
}

// tryAdvance moves VM v forward if its head task can progress.
func (e *executor) tryAdvance(v int) {
	vm := &e.vms[v]
	if vm.busy || vm.booting || vm.next >= len(vm.queue) {
		return
	}
	t := vm.queue[vm.next]
	if e.curVM[t] != v {
		// The task migrated away while queued; skip it.
		vm.next++
		e.tryAdvance(v)
		return
	}
	stage := e.w.Task(t).ExternalIn
	for _, ei := range e.inE[t] {
		switch e.eState[ei] {
		case edgePending, edgeUploading:
			return // wait for the producer / the upload
		case edgeLocal:
			if e.eLocal[ei] != v {
				// Data sits on another VM: ship it via the datacenter.
				e.eState[ei] = edgeUploading
				e.push(&event{time: e.now + e.edges[ei].Size/e.p.Bandwidth, kind: evUploadDone, edge: ei})
				return
			}
		case edgeAtDC:
			stage += e.edges[ei].Size
		}
	}
	if !vm.booked {
		vm.booked = true
		vm.booting = true
		vm.bookTime = e.now
		vm.bootDone = e.now + e.p.BootTime
		e.push(&event{time: vm.bootDone, kind: evBootDone, vm: v})
		return
	}
	vm.busy = true
	vm.current = t
	if stage > 0 {
		e.push(&event{time: e.now + stage/e.p.Bandwidth, kind: evStageDone, vm: v, task: t})
		return
	}
	e.startCompute(v, t)
}

func (e *executor) startCompute(v int, t wf.TaskID) {
	vm := &e.vms[v]
	vm.computing = true
	vm.computeStart = e.now
	speed := e.p.Categories[vm.cat].Speed
	dur := e.weights[t] / speed
	if timeout, ok := e.timeoutFor(v, t); ok && dur > timeout {
		e.push(&event{time: e.now + timeout, kind: evInterrupt, vm: v, task: t})
		return
	}
	e.push(&event{time: e.now + dur, kind: evComputeDone, vm: v, task: t})
}

// timeoutFor returns the monitoring timeout of task t on VM v, if
// monitoring applies there.
func (e *executor) timeoutFor(v int, t wf.TaskID) (float64, bool) {
	if e.policy.TimeoutSigma <= 0 {
		return 0, false
	}
	vm := &e.vms[v]
	if vm.cat == e.fastest {
		return 0, false // nowhere faster to go
	}
	if e.migCount[t] >= e.policy.maxMigrations() {
		return 0, false
	}
	task := e.w.Task(t)
	quantile := task.Weight.Mean + e.policy.TimeoutSigma*task.Weight.Sigma
	timeout := quantile / e.p.Categories[vm.cat].Speed
	if g := e.policy.GainFactor; g > 0 {
		// The gain rule: never interrupt before the task has consumed
		// at least γ× what a fastest-category restart would cost.
		inBytes := task.ExternalIn
		for _, ei := range e.inE[t] {
			inBytes += e.edges[ei].Size
		}
		restart := e.p.BootTime + inBytes/e.p.Bandwidth + quantile/e.p.Categories[e.fastest].Speed
		if floor := g * restart; floor > timeout {
			timeout = floor
		}
	}
	return timeout, true
}

func (e *executor) finishCompute(v int, t wf.TaskID) {
	vm := &e.vms[v]
	vm.busy = false
	vm.computing = false
	vm.next++
	e.done[t] = true
	e.doneCount++
	e.finish[t] = e.now
	if e.now > vm.end {
		vm.end = e.now
	}
	e.bump(e.now)
	for _, ei := range e.outE[t] {
		edge := e.edges[ei]
		if e.curVM[edge.To] == v {
			e.eState[ei] = edgeLocal
			e.eLocal[ei] = v
			continue
		}
		if edge.Size == 0 {
			e.eState[ei] = edgeAtDC
			continue
		}
		e.eState[ei] = edgeUploading
		e.push(&event{time: e.now + edge.Size/e.p.Bandwidth, kind: evUploadDone, edge: ei})
	}
	if out := e.w.Task(t).ExternalOut; out > 0 {
		arr := e.now + out/e.p.Bandwidth
		if arr > vm.end {
			vm.end = arr
		}
		e.bump(arr)
	}
	e.tryAdvanceAll()
}

// interrupt handles a fired timeout: migrate to a fresh fastest-class
// VM, unless the budget guard vetoes it.
func (e *executor) interrupt(v int, t wf.TaskID) {
	vm := &e.vms[v]
	dur := e.weights[t] / e.p.Categories[vm.cat].Speed
	if e.policy.Budget > 0 && e.projectedCostWithMigration(t) > e.policy.Budget {
		e.report.Vetoed++
		e.push(&event{time: vm.computeStart + dur, kind: evComputeDone, vm: v, task: t})
		return
	}
	// Abandon the computation: the VM proceeds with its queue.
	wasted := e.now - vm.computeStart
	vm.busy = false
	vm.computing = false
	vm.next++
	if e.now > vm.end {
		vm.end = e.now
	}
	e.migCount[t]++
	nv := len(e.vms)
	e.vms = append(e.vms, ovm{cat: e.fastest, queue: []wf.TaskID{t}})
	e.curVM[t] = nv
	e.report.Migrations = append(e.report.Migrations, Migration{
		Task: t, FromVM: v, ToVM: nv, At: e.now, Wasted: wasted,
	})
	e.tryAdvanceAll()
}

// projectedCostWithMigration estimates the final invoice if task t is
// restarted on a fresh fastest-category VM now. The estimate is
// deliberately conservative: every already-booked VM is billed to at
// least the current instant plus the conservative cost of the work
// still queued on it, the fixed external traffic is charged in full,
// and the new VM pays staging, the conservative compute time and its
// output shipment.
func (e *executor) projectedCostWithMigration(t wf.TaskID) float64 {
	total := 0.0
	firstBook := math.Inf(1)
	for i := range e.vms {
		vm := &e.vms[i]
		if !vm.booked {
			continue
		}
		if vm.bookTime < firstBook {
			firstBook = vm.bookTime
		}
		end := vm.end
		if end < e.now {
			end = e.now
		}
		total += e.p.VMCost(vm.cat, vm.bootDone, end)
		// Work still committed to this VM: queued unfinished tasks at
		// their conservative estimates, plus input staging.
		cat := e.p.Categories[vm.cat]
		for qi := vm.next; qi < len(vm.queue); qi++ {
			u := vm.queue[qi]
			if e.done[u] || e.curVM[u] != i || u == t {
				continue
			}
			task := e.w.Task(u)
			inBytes := task.ExternalIn
			for _, ei := range e.inE[u] {
				if e.eState[ei] != edgeLocal || e.eLocal[ei] != i {
					inBytes += e.edges[ei].Size
				}
			}
			total += (inBytes/e.p.Bandwidth + task.Weight.Conservative()/cat.Speed) * cat.CostPerSec
		}
	}
	if math.IsInf(firstBook, 1) {
		firstBook = 0
	}
	task := e.w.Task(t)
	fast := e.p.Categories[e.fastest]
	inBytes := task.ExternalIn
	for _, ei := range e.inE[t] {
		inBytes += e.edges[ei].Size
	}
	outBytes := task.ExternalOut
	for _, ei := range e.outE[t] {
		outBytes += e.edges[ei].Size
	}
	newWork := (inBytes+outBytes)/e.p.Bandwidth + task.Weight.Conservative()/fast.Speed
	total += newWork*fast.CostPerSec + fast.InitCost
	ext := e.w.ExternalInSize() + e.w.ExternalOutSize()
	span := e.now + e.p.BootTime + newWork - firstBook
	total += e.p.DCCost(ext, 0, 0, 0) // transfer part only
	total += span * e.p.DCCostPerSec
	return total
}

func (e *executor) tryAdvanceAll() {
	for v := range e.vms {
		e.tryAdvance(v)
	}
}

func (e *executor) run() (*Report, error) {
	n := e.w.NumTasks()
	e.tryAdvanceAll()
	guard := 0
	maxSteps := 32 * (n + len(e.edges) + len(e.vms) + 16) * (e.policy.maxMigrations() + 1)
	for e.doneCount < n {
		guard++
		if guard > maxSteps {
			return nil, fmt.Errorf("online: exceeded %d steps; execution is livelocked", maxSteps)
		}
		if e.events.Len() == 0 {
			return nil, fmt.Errorf("online: deadlock with %d/%d tasks finished", e.doneCount, n)
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.time < e.now-1e-9 {
			return nil, fmt.Errorf("online: time went backwards: %v -> %v", e.now, ev.time)
		}
		if ev.time > e.now {
			e.now = ev.time
		}
		switch ev.kind {
		case evBootDone:
			e.vms[ev.vm].booting = false
			e.tryAdvance(ev.vm)
		case evStageDone:
			e.startCompute(ev.vm, ev.task)
		case evComputeDone:
			e.finishCompute(ev.vm, ev.task)
		case evInterrupt:
			e.interrupt(ev.vm, ev.task)
		case evUploadDone:
			ei := ev.edge
			e.eState[ei] = edgeAtDC
			src := e.curVM[e.edges[ei].From]
			if e.vms[src].end < e.now {
				e.vms[src].end = e.now
			}
			e.bump(e.now)
			e.tryAdvanceAll()
		}
	}
	return e.collect(), nil
}

func (e *executor) collect() *Report {
	r := &e.report
	firstBook := math.Inf(1)
	for i := range e.vms {
		vm := &e.vms[i]
		if !vm.booked {
			continue
		}
		r.NumVMs++
		if vm.bookTime < firstBook {
			firstBook = vm.bookTime
		}
		r.TotalCost += e.p.VMCost(vm.cat, vm.bootDone, vm.end)
	}
	if math.IsInf(firstBook, 1) {
		firstBook = 0
	}
	r.DCCost = e.p.DCCost(e.w.ExternalInSize(), e.w.ExternalOutSize(), firstBook, e.maxTime)
	r.TotalCost += r.DCCost
	r.Makespan = e.maxTime - firstBook
	return r
}
