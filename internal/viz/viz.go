// Package viz renders the experiment sweeps as static SVG line charts
// — actual figure images to set beside the paper's, generated from the
// same data as the CSV tables.
//
// The rendering follows a fixed visual contract (one axis, 2px lines
// with round caps, ≥8px markers with a 2px surface ring, hairline
// solid gridlines, a legend whenever two or more series are shown,
// selective direct end-labels, text in ink tokens rather than series
// colors). Series colors come from a fixed colorblind-validated
// categorical palette, assigned to algorithms by identity — the same
// algorithm wears the same hue in every figure. Slots whose contrast
// against the light surface is below 3:1 rely on the direct labels and
// on the CSV table view that accompanies every figure (the "relief
// rule"). Markers carry native SVG <title> tooltips.
package viz

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Visual tokens: the light-mode surface, ink and palette values of the
// validated reference palette (dataviz skill, references/palette.md).
const (
	surface   = "#fcfcfb"
	inkMain   = "#0b0b0b"
	inkSoft   = "#52514e"
	inkMuted  = "#8a8983"
	gridColor = "#e9e8e4" // one step off the surface, hairline
)

// palette is the fixed categorical order; adjacent-pair CVD separation
// was validated with the skill's validator for every figure's subset.
var palette = []string{
	"#2a78d6", // 1 blue
	"#1baf7a", // 2 aqua
	"#eda100", // 3 yellow
	"#008300", // 4 green
	"#4a3aa7", // 5 violet
	"#e34948", // 6 red
	"#e87ba4", // 7 magenta
	"#eb6834", // 8 orange
}

// SlotColor returns the palette color of a 1-based categorical slot.
func SlotColor(slot int) string {
	if slot < 1 || slot > len(palette) {
		return inkMuted
	}
	return palette[slot-1]
}

// Point is one (x, y) observation with an optional spread (σ).
type Point struct {
	X, Y   float64
	Spread float64
}

// Series is one line: a named entity with a fixed palette slot.
type Series struct {
	Name   string
	Slot   int // 1-based palette slot; identity-stable across figures
	Points []Point
}

// RefPoint is a reference annotation (the paper's min_cost dot),
// rendered as an open diamond in ink, never in a series color.
type RefPoint struct {
	Label string
	X, Y  float64
}

// LineChart is a single-axis line figure.
type LineChart struct {
	Title    string
	Subtitle string
	XLabel   string
	YLabel   string
	Series   []Series
	Refs     []RefPoint
	// LogY switches the y axis to log10 — used for makespan panels
	// where the min_cost reference sits an order of magnitude above
	// the curves.
	LogY bool
}

// geometry
const (
	chartW       = 640
	chartH       = 400
	marginLeft   = 64
	marginRight  = 130
	marginTop    = 56
	marginBottom = 48
)

type scale struct {
	min, max float64
	log      bool
	pixels   float64
	offset   float64
	invert   bool
}

func (s scale) pos(v float64) float64 {
	lo, hi, x := s.min, s.max, v
	if s.log {
		lo, hi, x = math.Log10(s.min), math.Log10(s.max), math.Log10(v)
	}
	frac := 0.0
	if hi > lo {
		frac = (x - lo) / (hi - lo)
	}
	if s.invert {
		frac = 1 - frac
	}
	return s.offset + frac*s.pixels
}

// RenderSVG writes the chart as a standalone SVG document.
func (c *LineChart) RenderSVG(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, -apple-system, 'Segoe UI', sans-serif">`+"\n",
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", chartW, chartH, surface)

	xs, ys, err := c.scales()
	if err != nil {
		return err
	}

	// Title and subtitle.
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="600" fill="%s">%s</text>`+"\n",
		marginLeft, inkMain, esc(c.Title))
	if c.Subtitle != "" {
		fmt.Fprintf(&b, `<text x="%d" y="36" font-size="11" fill="%s">%s</text>`+"\n",
			marginLeft, inkSoft, esc(c.Subtitle))
	}

	// Legend (always present for ≥2 series), one row at the top right.
	if len(c.Series) >= 2 {
		c.legend(&b)
	}

	// Gridlines + y ticks.
	for _, tick := range yTicks(ys, c.LogY) {
		y := ys.pos(tick)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			marginLeft, y, chartW-marginRight, y, gridColor)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" fill="%s" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+3, inkSoft, esc(formatTick(tick)))
	}
	// X ticks.
	for _, tick := range linTicks(xs.min, xs.max, 6) {
		x := xs.pos(tick)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
			x, chartH-marginBottom, x, chartH-marginBottom+4, gridColor)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" fill="%s" text-anchor="middle">%s</text>`+"\n",
			x, chartH-marginBottom+16, inkSoft, esc(formatTick(tick)))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
		float64(marginLeft)+xs.pixels/2, chartH-10, inkSoft, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-size="11" fill="%s" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginTop)+ys.pixels/2, inkSoft, float64(marginTop)+ys.pixels/2, esc(c.YLabel))

	// Baseline axis (hairline).
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
		marginLeft, chartH-marginBottom, chartW-marginRight, chartH-marginBottom, inkMuted)

	// Reference annotations: open diamond + label in ink.
	for _, r := range c.Refs {
		x, y := xs.pos(r.X), ys.pos(r.Y)
		fmt.Fprintf(&b, `<path d="M %.1f %.1f l 6 6 l -6 6 l -6 -6 z" fill="%s" stroke="%s" stroke-width="1.5">`+"\n",
			x, y-6, surface, inkSoft)
		fmt.Fprintf(&b, `<title>%s: (%s, %s)</title></path>`+"\n", esc(r.Label), esc(formatTick(r.X)), esc(formatTick(r.Y)))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s">%s</text>`+"\n",
			x+10, y+3, inkSoft, esc(r.Label))
	}

	// Series: 2px round-capped lines, r=4 markers with a 2px surface
	// ring, native <title> tooltips.
	for _, s := range c.Series {
		color := SlotColor(s.Slot)
		var path strings.Builder
		for i, p := range s.Points {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s %.1f %.1f ", cmd, xs.pos(p.X), ys.pos(p.Y))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linecap="round" stroke-linejoin="round"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		for _, p := range s.Points {
			x, y := xs.pos(p.X), ys.pos(p.Y)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="%s"/>`+"\n", x, y, surface)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s">`, x, y, color)
			fmt.Fprintf(&b, `<title>%s — x %s: %s`, esc(s.Name), esc(formatTick(p.X)), esc(formatTick(p.Y)))
			if p.Spread > 0 {
				fmt.Fprintf(&b, " ± %s", esc(formatTick(p.Spread)))
			}
			b.WriteString("</title></circle>\n")
		}
	}

	// Selective direct end-labels: only when they don't collide
	// (≥ 13px apart); the legend carries identity otherwise.
	c.endLabels(&b, xs, ys)

	b.WriteString("</svg>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// scales derives the x and y scales from the data.
func (c *LineChart) scales() (xs, ys scale, err error) {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	consider := func(x, y float64) {
		xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
		ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
	}
	n := 0
	for _, s := range c.Series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				return xs, ys, fmt.Errorf("viz: non-finite point in series %q", s.Name)
			}
			consider(p.X, p.Y)
			n++
		}
	}
	for _, r := range c.Refs {
		consider(r.X, r.Y)
	}
	if n == 0 {
		return xs, ys, fmt.Errorf("viz: chart %q has no points", c.Title)
	}
	if c.LogY {
		if ymin <= 0 {
			return xs, ys, fmt.Errorf("viz: log scale with non-positive value %v", ymin)
		}
		ymin, ymax = ymin/1.2, ymax*1.2
	} else {
		ymin = math.Min(0, ymin)
		ymax *= 1.08
		if ymax == ymin {
			ymax = ymin + 1
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	xs = scale{min: xmin, max: xmax, pixels: float64(chartW - marginLeft - marginRight), offset: marginLeft}
	ys = scale{min: ymin, max: ymax, log: c.LogY, pixels: float64(chartH - marginTop - marginBottom), offset: marginTop, invert: true}
	return xs, ys, nil
}

func (c *LineChart) legend(b *strings.Builder) {
	// Swatch rows stacked in the top-right corner.
	x := chartW - marginRight - 8
	for i := len(c.Series) - 1; i >= 0; i-- {
		s := c.Series[i]
		y := 14 + 13*i
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2" stroke-linecap="round"/>`+"\n",
			x, y, x+14, y, SlotColor(s.Slot))
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" fill="%s">%s</text>`+"\n",
			x+18, y+3, inkSoft, esc(s.Name))
	}
}

// endLabels writes direct labels at line ends when vertical spacing
// allows, skipping colliding ones (the legend remains authoritative).
func (c *LineChart) endLabels(b *strings.Builder, xs, ys scale) {
	type lbl struct {
		name string
		y    float64
		slot int
	}
	var labels []lbl
	for _, s := range c.Series {
		if len(s.Points) == 0 {
			continue
		}
		last := s.Points[len(s.Points)-1]
		labels = append(labels, lbl{name: s.Name, y: ys.pos(last.Y), slot: s.Slot})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].y < labels[j].y })
	x := float64(chartW-marginRight) + 10
	prevY := math.Inf(-1)
	for _, l := range labels {
		if l.y-prevY < 13 {
			continue // collision: the legend carries this one
		}
		prevY = l.y
		// Identity comes from a colored key beside the text, not from
		// coloring the text itself.
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2" stroke-linecap="round"/>`+"\n",
			x-6, l.y, x-1, l.y, SlotColor(l.slot))
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s">%s</text>`+"\n",
			x+2, l.y+3, inkSoft, esc(l.name))
	}
}

// yTicks picks tick values for the y scale.
func yTicks(s scale, logY bool) []float64 {
	if !logY {
		return linTicks(s.min, s.max, 5)
	}
	var out []float64
	lo := math.Floor(math.Log10(s.min))
	hi := math.Ceil(math.Log10(s.max))
	for e := lo; e <= hi; e++ {
		for _, m := range []float64{1, 2, 5} {
			v := m * math.Pow(10, e)
			if v >= s.min && v <= s.max {
				out = append(out, v)
			}
		}
	}
	return out
}

// linTicks returns ≤ n clean ticks (1/2/5 × 10^k) spanning [lo, hi].
func linTicks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 {
		return []float64{lo}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step/1e9; v += step {
		out = append(out, v)
	}
	return out
}

// formatTick renders clean tick values: thousands get commas, small
// values keep significant decimals.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return comma(fmt.Sprintf("%.0f", v))
	case av >= 100:
		return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%.1f", v), "0"), ".")
	case av >= 1:
		return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	case av == 0:
		return "0"
	default:
		return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	}
}

// comma inserts thousands separators into a plain integer string.
func comma(s string) string {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
	}
	for i := pre; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	out := b.String()
	if neg {
		return "-" + out
	}
	return out
}

// esc escapes XML-special characters in text content.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
