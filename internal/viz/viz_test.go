package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"budgetwf/internal/exp"
	"budgetwf/internal/sched"
	"budgetwf/internal/wfgen"
)

func sampleChart() *LineChart {
	return &LineChart{
		Title:  "Makespan vs budget — test",
		XLabel: "budget [$]",
		YLabel: "makespan [s]",
		Series: []Series{
			{Name: "heft", Slot: 2, Points: []Point{{X: 1, Y: 300}, {X: 2, Y: 200, Spread: 12}, {X: 3, Y: 150}}},
			{Name: "heftbudg", Slot: 4, Points: []Point{{X: 1, Y: 900}, {X: 2, Y: 400}, {X: 3, Y: 160}}},
		},
		Refs: []RefPoint{{Label: "min_cost", X: 1, Y: 2000}},
	}
}

func TestRenderSVGWellFormed(t *testing.T) {
	var b strings.Builder
	if err := sampleChart().RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	// Must be parseable XML end to end.
	dec := xml.NewDecoder(strings.NewReader(b.String()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
}

func TestRenderSVGContract(t *testing.T) {
	var b strings.Builder
	if err := sampleChart().RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	checks := map[string]string{
		"surface rect":       `fill="` + surface + `"`,
		"2px line stroke":    `stroke-width="2" stroke-linecap="round"`,
		"series color aqua":  SlotColor(2),
		"series color green": SlotColor(4),
		"marker tooltip":     "<title>heft — x 2: 200 ± 12</title>",
		"legend heft":        ">heft</text>",
		"legend heftbudg":    ">heftbudg</text>",
		"min_cost ref":       ">min_cost</text>",
		"hairline grid":      `stroke="` + gridColor + `" stroke-width="1"`,
		"x axis label":       ">budget [$]</text>",
	}
	for what, want := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s (%q)", what, want)
		}
	}
	// Ink never wears the series color: every <text> uses ink tokens.
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "<text") {
			continue
		}
		if strings.Contains(line, SlotColor(2)) || strings.Contains(line, SlotColor(4)) {
			t.Errorf("text wears a series color: %s", line)
		}
	}
}

func TestRenderSVGSingleSeriesNoLegend(t *testing.T) {
	c := sampleChart()
	c.Series = c.Series[:1]
	c.Refs = nil
	var b strings.Builder
	if err := c.RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	// A single series needs no legend box: the title names it. The
	// only textual occurrence of the name is its direct end label.
	if n := strings.Count(b.String(), ">heft</text>"); n != 1 {
		t.Errorf("%d name labels for a single series, want 1 (end label only)", n)
	}
}

func TestRenderSVGRejectsBadData(t *testing.T) {
	c := &LineChart{Title: "empty"}
	var b strings.Builder
	if err := c.RenderSVG(&b); err == nil {
		t.Error("empty chart accepted")
	}
	c = sampleChart()
	c.LogY = true
	c.Series[0].Points[0].Y = 0
	if err := c.RenderSVG(&b); err == nil {
		t.Error("log scale with zero accepted")
	}
}

func TestEscape(t *testing.T) {
	c := sampleChart()
	c.Title = `<script>&"`
	var b strings.Builder
	if err := c.RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<script>") {
		t.Error("title not escaped")
	}
}

func TestLinTicks(t *testing.T) {
	ticks := linTicks(0, 100, 5)
	if len(ticks) < 3 || ticks[0] != 0 || ticks[len(ticks)-1] != 100 {
		t.Errorf("ticks %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("non-increasing ticks %v", ticks)
		}
	}
	if got := linTicks(5, 5, 5); len(got) != 1 {
		t.Errorf("degenerate ticks %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		12345:  "12,345",
		250:    "250",
		2.5:    "2.5",
		0.0468: "0.0468",
		0:      "0",
	}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSweepChartFromRealSweep(t *testing.T) {
	algs := []sched.Algorithm{}
	for _, n := range []sched.Name{sched.NameHeft, sched.NameHeftBudg} {
		a, err := sched.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		algs = append(algs, a)
	}
	res, err := exp.RunSweep(exp.Scenario{
		Type: wfgen.Montage, N: 30, SigmaRatio: 0.5, Instances: 1, Reps: 3, Workers: 2,
	}, algs, 4)
	if err != nil {
		t.Fatal(err)
	}
	panels, err := SweepPanels(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		var b strings.Builder
		if err := p.RenderSVG(&b); err != nil {
			t.Fatalf("%s: %v", p.Title, err)
		}
		if !strings.Contains(b.String(), "heftbudg") {
			t.Errorf("%s: missing series", p.Title)
		}
	}
	// Identity-stable slots.
	if algorithmSlot[sched.NameHeft] != 2 || algorithmSlot[sched.NameCGPlus] != 8 {
		t.Error("algorithm slot mapping changed — figures lose cross-figure identity")
	}
}
