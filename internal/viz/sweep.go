package viz

import (
	"fmt"

	"budgetwf/internal/exp"
	"budgetwf/internal/sched"
)

// algorithmSlot fixes each algorithm's palette slot by identity: the
// same algorithm wears the same hue in every figure (color follows the
// entity, never its per-chart rank). CG and CG+ share the orange slot
// — they never co-occur in one panel — and every per-figure subset was
// validated for adjacent-pair CVD separation.
var algorithmSlot = map[sched.Name]int{
	sched.NameMinMin:          1, // blue
	sched.NameHeft:            2, // aqua
	sched.NameMinMinBudg:      3, // yellow
	sched.NameHeftBudg:        4, // green
	sched.NameHeftBudgPlus:    5, // violet
	sched.NameBDT:             6, // red
	sched.NameHeftBudgPlusInv: 7, // magenta
	sched.NameCG:              8, // orange
	sched.NameCGPlus:          8, // orange (never shown beside CG)
}

// Metric selects which panel of a sweep to draw — the three columns of
// the paper's figures.
type Metric string

// The three panels.
const (
	MetricMakespan Metric = "makespan"
	MetricCost     Metric = "cost"
	MetricVMs      Metric = "vms"
	MetricValid    Metric = "valid"
)

// SweepChart turns one sweep result into one panel. Makespan panels
// use a log y-axis so the min_cost reference (an order of magnitude
// above the curves) stays on scale.
func SweepChart(res *exp.SweepResult, metric Metric) (*LineChart, error) {
	c := &LineChart{
		XLabel:   "initial budget [$]",
		Subtitle: fmt.Sprintf("%s, %d tasks, σ/w̄ = %.2f, %d × %d stochastic runs", res.Scenario.Type, res.Scenario.N, res.Scenario.SigmaRatio, res.Scenario.Instances, res.Scenario.Reps),
	}
	switch metric {
	case MetricMakespan:
		c.Title = fmt.Sprintf("Makespan vs budget — %s", res.Scenario.Type)
		c.YLabel = "makespan [s]"
		c.LogY = true
	case MetricCost:
		c.Title = fmt.Sprintf("Realized cost vs budget — %s", res.Scenario.Type)
		c.YLabel = "cost [$]"
	case MetricVMs:
		c.Title = fmt.Sprintf("VMs enrolled vs budget — %s", res.Scenario.Type)
		c.YLabel = "VMs"
	case MetricValid:
		c.Title = fmt.Sprintf("Budget-respecting executions vs budget — %s", res.Scenario.Type)
		c.YLabel = "valid executions [%]"
	default:
		return nil, fmt.Errorf("viz: unknown metric %q", metric)
	}

	for _, s := range res.Series {
		slot, ok := algorithmSlot[s.Algorithm]
		if !ok {
			return nil, fmt.Errorf("viz: no palette slot for algorithm %q", s.Algorithm)
		}
		series := Series{Name: string(s.Algorithm), Slot: slot}
		for _, p := range s.Points {
			pt := Point{X: p.Budget}
			switch metric {
			case MetricMakespan:
				pt.Y, pt.Spread = p.Makespan.Mean, p.Makespan.StdDev
			case MetricCost:
				pt.Y, pt.Spread = p.Cost.Mean, p.Cost.StdDev
			case MetricVMs:
				pt.Y, pt.Spread = p.NumVMs.Mean, p.NumVMs.StdDev
			case MetricValid:
				pt.Y = 100 * p.ValidFrac
			}
			series.Points = append(series.Points, pt)
		}
		c.Series = append(c.Series, series)
	}
	if metric == MetricMakespan {
		c.Refs = append(c.Refs, RefPoint{Label: "min_cost", X: res.MinCostBudget, Y: res.MinCostMakespan})
	}
	return c, nil
}

// SweepPanels renders the figure's standard panel set (makespan, cost,
// VMs — the paper's three columns).
func SweepPanels(res *exp.SweepResult) ([]*LineChart, error) {
	var out []*LineChart
	for _, m := range []Metric{MetricMakespan, MetricCost, MetricVMs} {
		c, err := SweepChart(res, m)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
