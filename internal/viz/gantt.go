package viz

import (
	"fmt"
	"io"
	"strings"

	"budgetwf/internal/plan"
	"budgetwf/internal/sim"
	"budgetwf/internal/wf"
)

// RenderGanttSVG draws one realized execution as an SVG Gantt chart:
// a row per VM, computation bars colored by VM *category* (the
// identity that matters on a heterogeneous platform), staging shown as
// a low-opacity wash of the same hue, boot as a muted sliver. Every
// bar carries a native tooltip with the task's name and timeline; a
// category legend sits top-right.
func RenderGanttSVG(out io.Writer, w *wf.Workflow, s *plan.Schedule, res *sim.Result, title string) error {
	if len(res.VMs) == 0 {
		return fmt.Errorf("viz: gantt with no VMs")
	}
	const (
		rowH     = 16
		rowGap   = 6
		leftPad  = 96
		rightPad = 120
		topPad   = 48
	)
	width := 760
	plotW := float64(width - leftPad - rightPad)
	height := topPad + len(res.VMs)*(rowH+rowGap) + 40

	span := res.LastEvent - res.FirstBook
	if span <= 0 {
		span = 1
	}
	x := func(t float64) float64 {
		return float64(leftPad) + (t-res.FirstBook)/span*plotW
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, -apple-system, 'Segoe UI', sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", width, height, surface)
	fmt.Fprintf(&b, `<text x="16" y="20" font-size="14" font-weight="600" fill="%s">%s</text>`+"\n", inkMain, esc(title))
	fmt.Fprintf(&b, `<text x="16" y="36" font-size="11" fill="%s">makespan %.1f s, cost $%.4f, %d VMs</text>`+"\n",
		inkSoft, res.Makespan, res.TotalCost, len(res.VMs))

	// Category legend (≥2 categories in use → legend).
	usedCats := map[int]bool{}
	for _, vm := range res.VMs {
		usedCats[vm.Cat] = true
	}
	if len(usedCats) >= 2 {
		lx := width - rightPad - 8
		i := 0
		for cat := 0; cat < 8; cat++ {
			if !usedCats[cat] {
				continue
			}
			y := 14 + 13*i
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="8" rx="2" fill="%s"/>`+"\n", lx, y-6, SlotColor(cat+1))
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="%s">category %d</text>`+"\n", lx+16, y+2, inkSoft, cat)
			i++
		}
	}

	// Time ticks.
	for _, tick := range linTicks(res.FirstBook, res.LastEvent, 8) {
		tx := x(tick)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
			tx, topPad-4, tx, height-30, gridColor)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" fill="%s" text-anchor="middle">%s</text>`+"\n",
			tx, height-16, inkSoft, esc(formatTick(tick)))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">time [s]</text>`+"\n",
		float64(leftPad)+plotW/2, height-2, inkSoft)

	// Group tasks per VM.
	tasksOf := make([][]wf.TaskID, len(res.VMs))
	for t := range res.Tasks {
		vm := s.TaskVM[t]
		if vm >= 0 && vm < len(tasksOf) {
			tasksOf[vm] = append(tasksOf[vm], wf.TaskID(t))
		}
	}

	for vmIdx, vm := range res.VMs {
		y := float64(topPad + vmIdx*(rowH+rowGap))
		color := SlotColor(vm.Cat + 1)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" fill="%s" text-anchor="end">vm%d</text>`+"\n",
			leftPad-8, y+rowH/2+3, inkMain, vmIdx)
		// Boot sliver in muted ink.
		if vm.Start > vm.Book {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%d" fill="%s" opacity="0.35"><title>vm%d boot: %.1f–%.1f s</title></rect>`+"\n",
				x(vm.Book), y+4, x(vm.Start)-x(vm.Book), rowH-8, inkMuted, vmIdx, vm.Book, vm.Start)
		}
		for _, t := range tasksOf[vmIdx] {
			tt := res.Tasks[t]
			name := w.Task(t).Name
			// Staging wash at ~12% opacity (the area-fill rule).
			if tt.ComputeStart > tt.StageStart {
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%d" fill="%s" opacity="0.12"><title>%s staging: %.1f–%.1f s</title></rect>`+"\n",
					x(tt.StageStart), y, x(tt.ComputeStart)-x(tt.StageStart), rowH, color, esc(name), tt.StageStart, tt.ComputeStart)
			}
			// Compute bar: rounded data end (right), square start, and
			// a 2px surface gap courtesy of per-bar spacing in time.
			bw := x(tt.Finish) - x(tt.ComputeStart)
			if bw < 1 {
				bw = 1
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%d" rx="2" fill="%s"><title>%s: compute %.1f–%.1f s on vm%d (cat %d)</title></rect>`+"\n",
				x(tt.ComputeStart), y, bw, rowH, color, esc(name), tt.ComputeStart, tt.Finish, vmIdx, vm.Cat)
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(out, b.String())
	return err
}
