package viz

import (
	"fmt"
	"io"
	"strings"
)

// Bar is one row of a horizontal bar chart.
type Bar struct {
	Label string
	Value float64
	// Note is an optional annotation appended to the value label
	// (e.g. a validity percentage).
	Note string
}

// BarChart is a horizontal single-series bar figure: one hue for every
// bar (magnitude is carried by length; coloring bars darker-when-longer
// would double-encode), value labels at the tips, category labels on
// the left.
type BarChart struct {
	Title    string
	Subtitle string
	XLabel   string
	Bars     []Bar
	// Slot picks the single series hue; 0 defaults to slot 1 (blue).
	Slot int
	// Unit is appended to tip labels ("s", "$").
	Unit string
}

// Bar geometry per the mark specs: ≤24px thick with a 4px rounded data
// end anchored square at the baseline, separated by ≥2px of surface.
const (
	barThickness = 18
	barGap       = 10
	barLabelW    = 170
)

// RenderSVG writes the bar chart as a standalone SVG document.
func (c *BarChart) RenderSVG(w io.Writer) error {
	if len(c.Bars) == 0 {
		return fmt.Errorf("viz: bar chart %q has no bars", c.Title)
	}
	slot := c.Slot
	if slot == 0 {
		slot = 1
	}
	color := SlotColor(slot)

	maxV := 0.0
	for _, b := range c.Bars {
		if b.Value < 0 {
			return fmt.Errorf("viz: negative bar value %v (%s)", b.Value, b.Label)
		}
		if b.Value > maxV {
			maxV = b.Value
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	width := 640
	top := 52
	plotW := float64(width - barLabelW - 150)
	height := top + len(c.Bars)*(barThickness+barGap) + 46

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, -apple-system, 'Segoe UI', sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", width, height, surface)
	fmt.Fprintf(&b, `<text x="16" y="20" font-size="14" font-weight="600" fill="%s">%s</text>`+"\n", inkMain, esc(c.Title))
	if c.Subtitle != "" {
		fmt.Fprintf(&b, `<text x="16" y="36" font-size="11" fill="%s">%s</text>`+"\n", inkSoft, esc(c.Subtitle))
	}

	baseX := float64(barLabelW)
	// Vertical hairline gridlines with ticks.
	for _, tick := range linTicks(0, maxV, 5) {
		x := baseX + tick/maxV*plotW
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
			x, top-6, x, height-34, gridColor)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" fill="%s" text-anchor="middle">%s</text>`+"\n",
			x, height-20, inkSoft, esc(formatTick(tick)))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			baseX+plotW/2, height-6, inkSoft, esc(c.XLabel))
	}

	for i, bar := range c.Bars {
		y := float64(top + i*(barThickness+barGap))
		w := bar.Value / maxV * plotW
		// Square at the baseline, 4px rounded at the data end: a path
		// with rounded right corners only.
		if w > 4 {
			fmt.Fprintf(&b, `<path d="M %.1f %.1f h %.1f a 4 4 0 0 1 4 4 v %d a 4 4 0 0 1 -4 4 h -%.1f z" fill="%s">`,
				baseX, y, w-4, barThickness-8, w-4, color)
		} else {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%d" fill="%s">`,
				baseX, y, w, barThickness, color)
		}
		fmt.Fprintf(&b, `<title>%s: %s%s</title>`, esc(bar.Label), esc(formatTick(bar.Value)), esc(c.Unit))
		if w > 4 {
			b.WriteString("</path>\n")
		} else {
			b.WriteString("</rect>\n")
		}
		// Category label (ink, left), value at the tip (ink, outside).
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			baseX-8, y+float64(barThickness)/2+4, inkMain, esc(bar.Label))
		tip := fmt.Sprintf("%s%s", formatTick(bar.Value), c.Unit)
		if bar.Note != "" {
			tip += "  " + bar.Note
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s">%s</text>`+"\n",
			baseX+w+8, y+float64(barThickness)/2+4, inkSoft, esc(tip))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
