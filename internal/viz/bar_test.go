package viz

import (
	"encoding/xml"
	"strings"
	"testing"
)

func sampleBarChart() *BarChart {
	return &BarChart{
		Title:    "Ablation — makespan at minimum budget",
		Subtitle: "montage, 90 tasks",
		XLabel:   "makespan [s]",
		Unit:     " s",
		Bars: []Bar{
			{Label: "paper (all safeguards)", Value: 1098, Note: "100% valid"},
			{Label: "no conservative weights", Value: 616, Note: "100% valid"},
			{Label: "no reserves", Value: 145, Note: "0% valid"},
		},
	}
}

func TestBarChartWellFormed(t *testing.T) {
	var b strings.Builder
	if err := sampleBarChart().RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(strings.NewReader(b.String()))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
}

func TestBarChartContract(t *testing.T) {
	var b strings.Builder
	if err := sampleBarChart().RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Single hue for every bar (no value-ramp on nominal categories).
	if n := strings.Count(out, SlotColor(1)); n != 3 {
		t.Errorf("%d bars in slot-1 hue, want 3", n)
	}
	for slot := 2; slot <= 8; slot++ {
		if strings.Contains(out, SlotColor(slot)) {
			t.Errorf("bar chart leaked a second hue (slot %d)", slot)
		}
	}
	// Rounded data-end path and tooltips.
	if !strings.Contains(out, "a 4 4 0 0 1") {
		t.Error("missing 4px rounded data end")
	}
	if !strings.Contains(out, "<title>no reserves: 145 s</title>") {
		t.Error("missing bar tooltip")
	}
	// Tip labels carry the note.
	if !strings.Contains(out, "0% valid") {
		t.Error("missing bar note")
	}
	// Labels wear ink, not the series color.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "<text") && strings.Contains(line, SlotColor(1)) {
			t.Errorf("text wears the series color: %s", line)
		}
	}
}

func TestBarChartRejectsBadInput(t *testing.T) {
	var b strings.Builder
	if err := (&BarChart{Title: "empty"}).RenderSVG(&b); err == nil {
		t.Error("empty bar chart accepted")
	}
	c := sampleBarChart()
	c.Bars[0].Value = -3
	if err := c.RenderSVG(&b); err == nil {
		t.Error("negative bar accepted")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := &BarChart{Title: "z", Bars: []Bar{{Label: "a", Value: 0}, {Label: "b", Value: 0}}}
	var b strings.Builder
	if err := c.RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<rect") && !strings.Contains(b.String(), "<path") {
		t.Error("zero bars rendered nothing")
	}
}
