package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"budgetwf/internal/platform"
	"budgetwf/internal/sched"
	"budgetwf/internal/sim"
	"budgetwf/internal/wfgen"
)

func TestRenderGanttSVG(t *testing.T) {
	p := platform.Default()
	w := wfgen.MustGenerate(wfgen.Montage, 30, 0).WithSigmaRatio(0.5)
	s, err := sched.HeftBudg(w, p, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunDeterministic(w, p, s)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderGanttSVG(&b, w, s, res, "Gantt — montage"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	for _, want := range []string{"vm0", "makespan", "time [s]", "compute", "<title>"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q", want)
		}
	}
	// One compute bar per task.
	if n := strings.Count(out, ": compute "); n != w.NumTasks() {
		t.Errorf("%d compute bars for %d tasks", n, w.NumTasks())
	}
	// Task names never wear the bar color as text: row labels are ink.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "<text") && strings.Contains(line, SlotColor(1)) {
			t.Errorf("text wears a category color: %s", line)
		}
	}
}

func TestRenderGanttSVGEmpty(t *testing.T) {
	var b strings.Builder
	if err := RenderGanttSVG(&b, nil, nil, &sim.Result{}, "x"); err == nil {
		t.Error("empty result accepted")
	}
}
