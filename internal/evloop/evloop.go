// Package evloop is the deterministic discrete-event substrate shared
// by the single-workflow online executor (internal/online) and the
// multi-tenant shared-pool service (internal/pool).
//
// Determinism is the whole point: events are dispatched in strict
// (time, insertion-sequence) order, so two runs that push the same
// events in the same order dispatch them in the same order, tied
// instants included. The insertion sequence is assigned by Push — the
// caller never supplies it — which makes the tie-break a pure function
// of program order and lets a host loop (the pool) interleave events
// from many producers (one hosted executor per in-flight workflow,
// plus its own billing-boundary and deprovision timers) while keeping
// every producer's internal order intact. That property is what makes
// a single-tenant pool run bit-identical to a standalone
// internal/online execution: same events, same relative order, same
// floating-point arithmetic.
package evloop

import "fmt"

// Item is one schedulable event. When is the virtual instant the event
// fires; EvSeq/SetEvSeq expose the loop-assigned insertion sequence
// used to break ties deterministically.
type Item interface {
	When() float64
	EvSeq() int
	SetEvSeq(int)
}

// Loop is a deterministic event loop: a binary min-heap ordered by
// (When, EvSeq) plus a monotonic virtual clock. The zero value is
// ready to use. Loop is not safe for concurrent use; hosts serialize
// access (the pool's HTTP service holds a mutex across a drain).
type Loop[E Item] struct {
	now float64
	seq int
	h   []E
}

// Now returns the virtual clock.
func (l *Loop[E]) Now() float64 { return l.now }

// Len returns the number of pending events.
func (l *Loop[E]) Len() int { return len(l.h) }

// Push schedules an event, assigning it the next insertion sequence.
// Scheduling in the past is legal at push time (the error surfaces at
// Advance, where the contract is actually violated).
func (l *Loop[E]) Push(e E) {
	e.SetEvSeq(l.seq)
	l.seq++
	l.h = append(l.h, e)
	l.up(len(l.h) - 1)
}

// Pop removes and returns the earliest pending event.
func (l *Loop[E]) Pop() (E, bool) {
	var zero E
	if len(l.h) == 0 {
		return zero, false
	}
	top := l.h[0]
	last := len(l.h) - 1
	l.h[0] = l.h[last]
	l.h[last] = zero // release the reference
	l.h = l.h[:last]
	if len(l.h) > 0 {
		l.down(0)
	}
	return top, true
}

// Peek returns the earliest pending event without removing it.
func (l *Loop[E]) Peek() (E, bool) {
	var zero E
	if len(l.h) == 0 {
		return zero, false
	}
	return l.h[0], true
}

// Advance moves the clock to t. Moving backwards (beyond a small
// absolute tolerance for float noise on tied instants) is a corrupted
// heap or a mis-timed push, never a legal schedule: it fails loudly.
func (l *Loop[E]) Advance(t float64) error {
	if t < l.now-1e-9 {
		return fmt.Errorf("evloop: time went backwards: %v -> %v", l.now, t)
	}
	if t > l.now {
		l.now = t
	}
	return nil
}

func (l *Loop[E]) less(i, j int) bool {
	ti, tj := l.h[i].When(), l.h[j].When()
	if ti != tj {
		return ti < tj
	}
	return l.h[i].EvSeq() < l.h[j].EvSeq()
}

func (l *Loop[E]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !l.less(i, parent) {
			return
		}
		l.h[i], l.h[parent] = l.h[parent], l.h[i]
		i = parent
	}
}

func (l *Loop[E]) down(i int) {
	n := len(l.h)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && l.less(left, smallest) {
			smallest = left
		}
		if right < n && l.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		l.h[i], l.h[smallest] = l.h[smallest], l.h[i]
		i = smallest
	}
}
