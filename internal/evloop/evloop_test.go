package evloop

import (
	"testing"

	"budgetwf/internal/rng"
)

type testEv struct {
	at  float64
	seq int
	id  int
}

func (e *testEv) When() float64  { return e.at }
func (e *testEv) EvSeq() int     { return e.seq }
func (e *testEv) SetEvSeq(s int) { e.seq = s }

func TestOrdersByTimeThenInsertion(t *testing.T) {
	var l Loop[*testEv]
	// Three tied instants interleaved with distinct ones; ties must
	// come out in push order.
	l.Push(&testEv{at: 5, id: 0})
	l.Push(&testEv{at: 1, id: 1})
	l.Push(&testEv{at: 5, id: 2})
	l.Push(&testEv{at: 3, id: 3})
	l.Push(&testEv{at: 5, id: 4})
	want := []int{1, 3, 0, 2, 4}
	for i, w := range want {
		ev, ok := l.Pop()
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		if ev.id != w {
			t.Fatalf("pop %d: got id %d, want %d", i, ev.id, w)
		}
	}
	if _, ok := l.Pop(); ok {
		t.Fatal("pop on empty loop succeeded")
	}
}

func TestAdvanceMonotonic(t *testing.T) {
	var l Loop[*testEv]
	if err := l.Advance(10); err != nil {
		t.Fatal(err)
	}
	if l.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", l.Now())
	}
	// Same instant and tiny backwards noise are fine.
	if err := l.Advance(10); err != nil {
		t.Fatal(err)
	}
	if err := l.Advance(10 - 1e-12); err != nil {
		t.Fatal(err)
	}
	if l.Now() != 10 {
		t.Fatalf("Now() = %v, want clock unmoved at 10", l.Now())
	}
	if err := l.Advance(9); err == nil {
		t.Fatal("Advance(9) after Advance(10) should fail")
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		var l Loop[*testEv]
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			// Coarse times force plenty of ties.
			l.Push(&testEv{at: float64(r.Intn(20)), id: i})
		}
		lastT, lastSeq := -1.0, -1
		for l.Len() > 0 {
			ev, _ := l.Pop()
			if ev.at < lastT || (ev.at == lastT && ev.seq < lastSeq) {
				t.Fatalf("trial %d: out of order: (%v,%d) after (%v,%d)",
					trial, ev.at, ev.seq, lastT, lastSeq)
			}
			lastT, lastSeq = ev.at, ev.seq
		}
	}
}

func TestPeek(t *testing.T) {
	var l Loop[*testEv]
	if _, ok := l.Peek(); ok {
		t.Fatal("peek on empty loop succeeded")
	}
	l.Push(&testEv{at: 2, id: 0})
	l.Push(&testEv{at: 1, id: 1})
	ev, ok := l.Peek()
	if !ok || ev.id != 1 {
		t.Fatalf("peek = (%v, %v), want id 1", ev, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("peek consumed an event: len %d", l.Len())
	}
}
