package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := New("root")
	root := tr.Root()
	root.Set(Str("requestId", "abc"), Int("n", 30))

	plan := root.Child("plan")
	plan.Event("place", Int("task", 3), Float("eft", 12.5), Bool("admitted", true))
	plan.Event("place", Int("task", 4), Float("eft", 13.5), Bool("admitted", false))
	plan.End()
	simSpan := root.Child("simulate")
	simSpan.End()
	tr.EndAll()

	tree := tr.Tree()
	if tree.Root.Name != "root" {
		t.Fatalf("root name = %q", tree.Root.Name)
	}
	if got := tree.Root.Attrs["requestId"]; got != "abc" {
		t.Errorf("requestId attr = %v", got)
	}
	if got := tree.Root.Attrs["n"]; got != int64(30) {
		t.Errorf("n attr = %v (%T)", got, got)
	}
	if len(tree.Root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(tree.Root.Children))
	}
	p := tree.Root.Children[0]
	if p.Name != "plan" || len(p.Events) != 2 {
		t.Fatalf("plan span: name=%q events=%d", p.Name, len(p.Events))
	}
	if p.Events[0].Attrs["task"] != int64(3) || p.Events[0].Attrs["admitted"] != true {
		t.Errorf("event attrs = %v", p.Events[0].Attrs)
	}
	if p.InFlight || tree.Root.InFlight {
		t.Error("ended spans reported in-flight")
	}
	if p.DurUs < 0 {
		t.Errorf("negative duration %v", p.DurUs)
	}
}

func TestTreeIsJSONSerializable(t *testing.T) {
	tr := New("op")
	tr.Root().Event("weird",
		Float("inf", math.Inf(1)),
		Float("ninf", math.Inf(-1)),
		Float("nan", math.NaN()),
		Float("ok", 1.5))
	tr.EndAll()
	b, err := json.Marshal(tr.Tree())
	if err != nil {
		t.Fatalf("non-finite attrs must serialize: %v", err)
	}
	var round TraceJSON
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	at := round.Root.Events[0].Attrs
	if at["inf"] != "+Inf" || at["nan"] != "NaN" {
		t.Errorf("non-finite floats = %v, want string forms", at)
	}
	if at["ok"] != 1.5 {
		t.Errorf("finite float = %v", at["ok"])
	}
}

func TestNilSpanIsSafeAndFree(t *testing.T) {
	var s *Span
	if s.Enabled() {
		t.Fatal("nil span claims enabled")
	}
	// Every method must be a no-op, including whole chains.
	c := s.Child("x")
	c.Set(Int("a", 1))
	c.Event("e", Str("k", "v"))
	c.Child("y").Child("z").End()
	c.End()
	if c != nil {
		t.Fatal("nil span spawned a real child")
	}
	if s.Trace() != nil {
		t.Fatal("nil span has a trace")
	}
}

func TestNodeCapBoundsMemory(t *testing.T) {
	tr := New("big")
	root := tr.Root()
	for i := 0; i < maxNodes+500; i++ {
		root.Event("e", Int("i", i))
	}
	if d := tr.Dropped(); d < 500 {
		t.Fatalf("dropped = %d, want ≥ 500", d)
	}
	// A child created past the cap is the nil tracer.
	if c := root.Child("post-cap"); c != nil {
		t.Fatal("child created past the node cap")
	}
	tree := tr.Tree()
	if len(tree.Root.Events) >= maxNodes {
		t.Fatalf("tree retained %d events, cap is %d", len(tree.Root.Events), maxNodes)
	}
	if tree.Dropped == 0 {
		t.Error("snapshot does not report drops")
	}
}

func TestContextPropagation(t *testing.T) {
	if s := SpanFromContext(context.Background()); s != nil {
		t.Fatal("background context carries a span")
	}
	tr := New("op")
	ctx := WithSpan(context.Background(), tr.Root())
	if s := SpanFromContext(ctx); s != tr.Root() {
		t.Fatal("span did not round-trip through the context")
	}
}

func TestChromeExportShape(t *testing.T) {
	tr := New("req-1")
	root := tr.Root()
	p := root.Child("plan")
	p.Event("budget-guard", Int("task", 0), Bool("admitted", true))
	p.End()
	tr.EndAll()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	// The golden shape: a JSON object with a traceEvents array whose
	// entries carry the phase/timestamp fields the viewers require.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("round-trip through encoding/json: %v", err)
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.Unit)
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases = append(phases, ph)
		if _, ok := ev["name"].(string); !ok {
			t.Errorf("event without name: %v", ev)
		}
		if ph == "X" || ph == "i" {
			if _, ok := ev["ts"].(float64); !ok {
				t.Errorf("event without numeric ts: %v", ev)
			}
		}
	}
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "M") || !strings.Contains(joined, "X") || !strings.Contains(joined, "i") {
		t.Errorf("phases %v missing M/X/i", phases)
	}
}

func TestSlogBridge(t *testing.T) {
	tr := New("op")
	tr.SetID("req-9")
	c := tr.Root().Child("plan")
	c.Event("place", Int("task", 7))
	c.End()
	tr.EndAll()

	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tr.Log(l)
	out := buf.String()
	for _, want := range []string{"span=op/plan", "event=place", "task=7", "traceId=req-9"} {
		if !strings.Contains(out, want) {
			t.Errorf("slog output missing %q:\n%s", want, out)
		}
	}

	// At a level above Debug the bridge must do nothing.
	var buf2 bytes.Buffer
	tr.Log(slog.New(slog.NewTextHandler(&buf2, nil)))
	if buf2.Len() != 0 {
		t.Errorf("bridge emitted at Info level: %s", buf2.String())
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("par")
	root := tr.Root()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := root.Child(fmt.Sprintf("worker-%d", g))
			for i := 0; i < 100; i++ {
				s.Event("tick", Int("i", i))
			}
			s.End()
		}(g)
	}
	// Snapshot concurrently with the writers.
	for i := 0; i < 10; i++ {
		_ = tr.Tree()
	}
	wg.Wait()
	tr.EndAll()
	tree := tr.Tree()
	if len(tree.Root.Children) != 8 {
		t.Fatalf("children = %d, want 8", len(tree.Root.Children))
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	mk := func(id string) *Trace {
		tr := New("op")
		tr.SetID(id)
		return tr
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		r.Add(mk(id))
	}
	if _, ok := r.Get("a"); ok {
		t.Error("oldest trace survived eviction")
	}
	for _, id := range []string{"b", "c", "d"} {
		if _, ok := r.Get(id); !ok {
			t.Errorf("trace %q not retrievable", id)
		}
	}
	if got := r.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	ids := r.IDs()
	if len(ids) != 3 || ids[0] != "d" || ids[2] != "b" {
		t.Errorf("IDs = %v, want [d c b]", ids)
	}

	// Re-using an ID must keep Get pointing at the newest trace even
	// after the older homonym is evicted.
	r2 := NewRing(2)
	first, second := mk("x"), mk("x")
	r2.Add(first)
	r2.Add(second)
	r2.Add(mk("y")) // evicts first
	got, ok := r2.Get("x")
	if !ok || got != second {
		t.Error("ID reuse broke retrieval")
	}

	// A nil ring (capacity < 1) is inert.
	var nr *Ring = NewRing(0)
	nr.Add(mk("z"))
	if nr.Len() != 0 {
		t.Error("nil ring stored a trace")
	}
	if _, ok := nr.Get("z"); ok {
		t.Error("nil ring retrieved a trace")
	}
}

func TestMonotonicTimestamps(t *testing.T) {
	tr := New("op")
	s := tr.Root().Child("a")
	time.Sleep(time.Millisecond)
	s.End()
	tr.EndAll()
	tree := tr.Tree()
	child := tree.Root.Children[0]
	if child.DurUs < 900 { // slept ≥ 1ms
		t.Errorf("child duration %v µs, want ≥ ~1000", child.DurUs)
	}
	if tree.Root.DurUs < child.StartUs+child.DurUs-1e-6 {
		t.Errorf("root (%v µs) shorter than child end (%v µs)",
			tree.Root.DurUs, child.StartUs+child.DurUs)
	}
}

// BenchmarkNilSpan pins the disabled-tracer cost: a nil *Span call
// chain must stay in the few-ns range so instrumented hot paths are
// unaffected when tracing is off.
func BenchmarkNilSpan(b *testing.B) {
	var s *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Enabled() {
			s.Event("place", Int("task", i))
		}
	}
}
