// Package obs is the repository's stdlib-only tracing core:
// hierarchical spans with typed key/value events, monotonic
// timestamps, context propagation and bounded memory.
//
// A Trace is one operation's span tree (one planner run, one daemon
// request, one simulation batch). Spans are created with Child, carry
// typed attributes (Set) and point-in-time events (Event), and are
// closed with End. Every Span method is nil-safe: with tracing
// disabled the instrumented code holds a nil *Span and each call
// degenerates to a nil check, so the hot paths pay near-zero cost
// (the planner/sim bench baselines guard this).
//
// Exporters:
//
//   - Tree renders the span tree as JSON-ready SpanJSON (the daemon's
//     inline ?trace=1 responses and GET /v1/traces/{id});
//   - ChromeTrace/WriteChrome render the Chrome trace-event JSON
//     consumed by chrome://tracing and Perfetto (see chrome.go);
//   - Log replays the tree into an slog.Logger (see slog.go);
//   - Ring keeps the most recent traces in bounded memory (see
//     ring.go).
//
// Timestamps are monotonic durations since the trace epoch
// (time.Since on the epoch time.Time, which carries the monotonic
// reading), so spans are immune to wall-clock steps.
package obs

import (
	"context"
	"math"
	"strconv"
	"sync"
	"time"
)

// maxNodes bounds the total number of spans plus events one Trace
// retains; beyond it new nodes are counted in Dropped instead of
// stored, so a pathological trace (a million-candidate planner run)
// degrades to a truncated tree rather than unbounded memory.
const maxNodes = 1 << 16

// attrKind discriminates the typed Attr payload.
type attrKind uint8

const (
	kindStr attrKind = iota
	kindInt
	kindFloat
	kindBool
)

// Attr is one typed key/value attribute. Values are stored unboxed
// (no interface allocation on the instrumentation path); non-finite
// floats are stored as strings so every attribute survives
// encoding/json.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
}

// Str returns a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: kindStr, s: v} }

// Int returns an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, kind: kindInt, i: int64(v)} }

// Int64 returns a 64-bit integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, i: v} }

// Float returns a float attribute. NaN and ±Inf are stored as their
// string forms: encoding/json rejects non-finite numbers, and a trace
// must always export.
func Float(key string, v float64) Attr {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return Attr{Key: key, kind: kindStr, s: strconv.FormatFloat(v, 'g', -1, 64)}
	}
	return Attr{Key: key, kind: kindFloat, f: v}
}

// Bool returns a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: kindBool}
	if v {
		a.i = 1
	}
	return a
}

// Value returns the attribute's payload as an interface value (used
// by the exporters, off the hot path).
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return a.i
	case kindFloat:
		return a.f
	case kindBool:
		return a.i != 0
	default:
		return a.s
	}
}

// Event is one timestamped point annotation inside a span.
type Event struct {
	Name  string
	At    time.Duration // since the trace epoch
	Attrs []Attr
}

// Span is one node of the trace tree. The zero of *Span (nil) is the
// disabled tracer: every method on a nil receiver is a no-op.
type Span struct {
	trace *Trace
	id    int // per-trace serial, root = 1; serialized in SpanContext
	name  string
	start time.Duration
	end   time.Duration
	ended bool
	// frozen marks a span imported from another process (Graft): its
	// end timestamp is authoritative even while InFlight, so exporters
	// must not substitute the snapshot instant.
	frozen   bool
	attrs    []Attr
	events   []Event
	children []*Span
}

// Trace is one operation's span tree. All mutation goes through the
// trace mutex, so spans of one trace may be used from the goroutine
// handing work to a worker pool and from the worker itself.
type Trace struct {
	mu      sync.Mutex
	id      string
	name    string
	epoch   time.Time
	root    *Span
	nodes   int
	seq     int // last span id handed out
	dropped int
}

// New starts a trace whose root span carries the given name. The root
// span is already started; End it (or EndAll) before exporting for
// meaningful durations, though exporters tolerate open spans.
func New(name string) *Trace {
	t := &Trace{name: name, epoch: time.Now()}
	t.root = &Span{trace: t, id: 1, name: name}
	t.nodes = 1
	t.seq = 1
	return t
}

// SetID tags the trace with an external identifier (the daemon's
// request ID); Ring indexes by it.
func (t *Trace) SetID(id string) {
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the identifier set with SetID.
func (t *Trace) ID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Name returns the root span's name.
func (t *Trace) Name() string { return t.name }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Dropped reports how many spans/events the node cap discarded.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// now returns the monotonic offset since the epoch.
func (t *Trace) now() time.Duration { return time.Since(t.epoch) }

// Child starts a sub-span. On a nil receiver it returns nil, keeping
// whole call chains free when tracing is disabled.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nodes >= maxNodes {
		t.dropped++
		droppedTotal.Add(1)
		return nil
	}
	t.seq++
	c := &Span{trace: t, id: t.seq, name: name, start: t.now()}
	s.children = append(s.children, c)
	t.nodes++
	return c
}

// Set attaches attributes to the span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.trace.mu.Unlock()
}

// Event records a timestamped point annotation.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.nodes >= maxNodes {
		t.dropped++
		droppedTotal.Add(1)
		return
	}
	s.events = append(s.events, Event{Name: name, At: t.now(), Attrs: attrs})
	t.nodes++
}

// Enabled reports whether the span records anything; instrumentation
// whose mere argument preparation is expensive should guard on it.
func (s *Span) Enabled() bool { return s != nil }

// Trace returns the owning trace (nil on a nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.trace
}

// End closes the span at the current instant. Ending twice keeps the
// first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = t.now()
	}
	t.mu.Unlock()
}

// EndAll closes the root (and implicitly timestamps the trace as
// finished); children left open keep reporting in-progress durations.
func (t *Trace) EndAll() { t.root.End() }

// SpanJSON is the wire form of one span, used by the daemon's inline
// trace responses and GET /v1/traces/{id}.
type SpanJSON struct {
	Name string `json:"name"`
	// StartUs and DurUs are microseconds since the trace start. An
	// unfinished span reports the duration up to the snapshot instant.
	StartUs  float64        `json:"startUs"`
	DurUs    float64        `json:"durUs"`
	InFlight bool           `json:"inFlight,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Events   []EventJSON    `json:"events,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

// EventJSON is the wire form of one event.
type EventJSON struct {
	Name  string         `json:"name"`
	AtUs  float64        `json:"atUs"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceJSON is the wire form of one whole trace.
type TraceJSON struct {
	ID      string    `json:"id,omitempty"`
	Name    string    `json:"name"`
	Dropped int       `json:"dropped,omitempty"`
	Root    *SpanJSON `json:"root"`
}

// Tree snapshots the span tree. It is safe to call while spans are
// still being added; the snapshot is a deep copy.
func (t *Trace) Tree() *TraceJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	root := t.root.tree(now)
	if t.dropped > 0 {
		// Surface truncation on the tree itself, not only in the
		// envelope: a grafted or re-exported root keeps the signal.
		if root.Attrs == nil {
			root.Attrs = make(map[string]any, 1)
		}
		root.Attrs[DroppedAttr] = t.dropped
	}
	return &TraceJSON{ID: t.id, Name: t.name, Dropped: t.dropped, Root: root}
}

// tree renders one span (caller holds the trace mutex).
func (s *Span) tree(now time.Duration) *SpanJSON {
	end := s.end
	inFlight := !s.ended
	if inFlight && !s.frozen {
		end = now
	}
	out := &SpanJSON{
		Name:     s.name,
		StartUs:  float64(s.start) / float64(time.Microsecond),
		DurUs:    float64(end-s.start) / float64(time.Microsecond),
		InFlight: inFlight,
		Attrs:    attrMap(s.attrs),
	}
	for _, e := range s.events {
		out.Events = append(out.Events, EventJSON{
			Name:  e.Name,
			AtUs:  float64(e.At) / float64(time.Microsecond),
			Attrs: attrMap(e.Attrs),
		})
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.tree(now))
	}
	return out
}

// attrMap renders attributes as a JSON object; nil for none.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// spanKey carries the active span through a context.
type spanKey struct{}

// WithSpan returns a context carrying the span; instrumented code
// retrieves it with SpanFromContext.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's span, or nil — the disabled
// tracer — when none was attached.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
