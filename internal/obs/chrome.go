package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// The Chrome trace-event format: the JSON document consumed by
// chrome://tracing and https://ui.perfetto.dev. These types are the
// single definition in the repository — internal/sim's VM-timeline
// exporter builds the same document from simulation timestamps.

// ChromeEvent is one entry of the trace-event array. Durations use
// the "X" (complete) phase, instants the "i" phase; timestamps are
// microseconds.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the document root.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Write encodes the document as JSON.
func (c *ChromeTrace) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(c)
}

// MetaThreadName returns the metadata event that names a timeline row.
func MetaThreadName(pid, tid int, name string) ChromeEvent {
	return ChromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name}}
}

// MetaProcessName returns the metadata event that names a process
// group (one per remote process in a stitched trace).
func MetaProcessName(pid int, name string) ChromeEvent {
	return ChromeEvent{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name}}
}

// ChromeTrace renders the span tree as a trace-event document: every
// span becomes an "X" complete event and every event an "i" instant.
//
// A single-process trace stays on one thread track (the viewer nests
// same-track slices by their timestamps, reproducing the tree) and the
// document is byte-identical to what this exporter always produced. A
// stitched trace — one whose spans carry ProcessAttr — instead gets a
// synthetic pid per remote process (coordinator = 0, workers numbered
// by sorted process name) and a tid per concurrent span lane, so the
// viewer renders one swimlane per worker.
func (t *Trace) ChromeTrace() *ChromeTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	doc := &ChromeTrace{DisplayTimeUnit: "ms"}
	if procs := t.processes(); len(procs) > 0 {
		t.chromeLanes(doc, now, procs)
	} else {
		doc.TraceEvents = append(doc.TraceEvents,
			MetaThreadName(0, 0, t.name))
		t.root.chrome(doc, now)
	}
	if t.dropped > 0 {
		// Tag the root slice (the first "X" event) with the drop count
		// so truncation is visible in the viewer.
		for i := range doc.TraceEvents {
			if doc.TraceEvents[i].Ph != "X" {
				continue
			}
			if doc.TraceEvents[i].Args == nil {
				doc.TraceEvents[i].Args = make(map[string]any, 1)
			}
			doc.TraceEvents[i].Args[DroppedAttr] = t.dropped
			break
		}
	}
	return doc
}

// processes collects the distinct ProcessAttr values of the tree,
// sorted, so pid assignment is deterministic (caller holds the mutex).
func (t *Trace) processes() []string {
	set := make(map[string]bool)
	collectProcesses(t.root, set)
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func collectProcesses(s *Span, set map[string]bool) {
	for _, a := range s.attrs {
		if a.Key == ProcessAttr && a.kind == kindStr && a.s != "" {
			set[a.s] = true
		}
	}
	for _, c := range s.children {
		collectProcesses(c, set)
	}
}

// processAttr returns the span's own ProcessAttr value, if any.
func (s *Span) processAttr() string {
	for _, a := range s.attrs {
		if a.Key == ProcessAttr && a.kind == kindStr {
			return a.s
		}
	}
	return ""
}

// chromeLanes emits the multi-process document (caller holds the
// mutex): process_name metadata for the coordinator (pid 0) and each
// remote process, then the span tree with per-process pids and greedy
// per-lane tids.
func (t *Trace) chromeLanes(doc *ChromeTrace, now time.Duration, procs []string) {
	pidOf := make(map[string]int, len(procs))
	doc.TraceEvents = append(doc.TraceEvents,
		MetaProcessName(0, "coordinator"),
		MetaThreadName(0, 0, t.name))
	for i, p := range procs {
		pidOf[p] = i + 1
		doc.TraceEvents = append(doc.TraceEvents, MetaProcessName(i+1, p))
	}
	// lanes[pid] holds, per tid, the end of the last slice placed
	// there; a lane root takes the first lane free at its start time.
	lanes := make(map[int][]time.Duration)
	t.chromeLane(doc, t.root, now, pidOf, lanes, 0, 0, false)
}

// chromeLane emits one span on an assigned (pid, tid) and recurses.
// A span opens a new lane when it hops processes (carries ProcessAttr)
// or is a direct child of the root — those are the concurrent shard
// dispatches; everything deeper inherits its parent's lane, which is
// correct because within one process the subtree intervals nest.
func (t *Trace) chromeLane(doc *ChromeTrace, s *Span, now time.Duration, pidOf map[string]int, lanes map[int][]time.Duration, pid, tid int, newLane bool) {
	const us = float64(time.Microsecond)
	if p := s.processAttr(); p != "" {
		if id, ok := pidOf[p]; ok {
			pid = id
			newLane = true
		}
	}
	end := s.end
	if !s.ended && !s.frozen {
		end = now
	}
	if newLane {
		tid = allocLane(lanes, pid, s.start, end)
	}
	doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
		Name: s.name, Cat: "span", Ph: "X",
		TS:  float64(s.start) / us,
		Dur: float64(end-s.start) / us,
		PID: pid, TID: tid,
		Args: attrMap(s.attrs),
	})
	for _, e := range s.events {
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: e.Name, Cat: "event", Ph: "i", Scope: "t",
			TS:  float64(e.At) / us,
			PID: pid, TID: tid,
			Args: attrMap(e.Attrs),
		})
	}
	for _, c := range s.children {
		t.chromeLane(doc, c, now, pidOf, lanes, pid, tid, s == t.root)
	}
}

// allocLane places [start, end] on the first lane of pid whose last
// slice has finished, extending the lane set otherwise. Lane roots
// arrive in start order (children are appended under the trace mutex
// with monotonic starts), so first-fit keeps lanes non-overlapping.
func allocLane(lanes map[int][]time.Duration, pid int, start, end time.Duration) int {
	ls := lanes[pid]
	for i, last := range ls {
		if last <= start {
			ls[i] = end
			return i
		}
	}
	lanes[pid] = append(ls, end)
	return len(ls)
}

// WriteChrome writes the span tree in the Chrome trace-event format;
// the output loads in chrome://tracing and Perfetto.
func (t *Trace) WriteChrome(w io.Writer) error {
	return t.ChromeTrace().Write(w)
}

// chrome appends one span's events (caller holds the trace mutex).
func (s *Span) chrome(doc *ChromeTrace, now time.Duration) {
	const us = float64(time.Microsecond)
	end := s.end
	if !s.ended && !s.frozen {
		end = now
	}
	doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
		Name: s.name, Cat: "span", Ph: "X",
		TS:   float64(s.start) / us,
		Dur:  float64(end-s.start) / us,
		Args: attrMap(s.attrs),
	})
	for _, e := range s.events {
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: e.Name, Cat: "event", Ph: "i", Scope: "t",
			TS:   float64(e.At) / us,
			Args: attrMap(e.Attrs),
		})
	}
	for _, c := range s.children {
		c.chrome(doc, now)
	}
}
