package obs

import (
	"encoding/json"
	"io"
	"time"
)

// The Chrome trace-event format: the JSON document consumed by
// chrome://tracing and https://ui.perfetto.dev. These types are the
// single definition in the repository — internal/sim's VM-timeline
// exporter builds the same document from simulation timestamps.

// ChromeEvent is one entry of the trace-event array. Durations use
// the "X" (complete) phase, instants the "i" phase; timestamps are
// microseconds.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the document root.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Write encodes the document as JSON.
func (c *ChromeTrace) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(c)
}

// MetaThreadName returns the metadata event that names a timeline row.
func MetaThreadName(pid, tid int, name string) ChromeEvent {
	return ChromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name}}
}

// ChromeTrace renders the span tree as a trace-event document: every
// span becomes an "X" complete event and every event an "i" instant,
// all on one thread track (the viewer nests same-track slices by
// their timestamps, reproducing the tree).
func (t *Trace) ChromeTrace() *ChromeTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	doc := &ChromeTrace{DisplayTimeUnit: "ms"}
	doc.TraceEvents = append(doc.TraceEvents,
		MetaThreadName(0, 0, t.name))
	t.root.chrome(doc, now)
	return doc
}

// WriteChrome writes the span tree in the Chrome trace-event format;
// the output loads in chrome://tracing and Perfetto.
func (t *Trace) WriteChrome(w io.Writer) error {
	return t.ChromeTrace().Write(w)
}

// chrome appends one span's events (caller holds the trace mutex).
func (s *Span) chrome(doc *ChromeTrace, now time.Duration) {
	const us = float64(time.Microsecond)
	end := s.end
	if !s.ended {
		end = now
	}
	doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
		Name: s.name, Cat: "span", Ph: "X",
		TS:   float64(s.start) / us,
		Dur:  float64(end-s.start) / us,
		Args: attrMap(s.attrs),
	})
	for _, e := range s.events {
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: e.Name, Cat: "event", Ph: "i", Scope: "t",
			TS:   float64(e.At) / us,
			Args: attrMap(e.Attrs),
		})
	}
	for _, c := range s.children {
		c.chrome(doc, now)
	}
}
