package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"
)

func TestSpanContextRoundTrip(t *testing.T) {
	cases := []SpanContext{
		{TraceID: "job-abc123", SpanID: 1, Epoch: 0},
		{TraceID: "req-9", SpanID: 42, Epoch: 3},
		{TraceID: "a;b", SpanID: 7, Epoch: 1}, // ';' in the id cannot survive — see below
	}
	for _, c := range cases[:2] {
		got, ok := ParseSpanContext(c.String())
		if !ok || got != c {
			t.Errorf("round trip %v: got %v ok=%v", c, got, ok)
		}
	}
	// A trace id containing the separator parses as malformed rather
	// than silently mis-splitting.
	if _, ok := ParseSpanContext(cases[2].String()); ok {
		t.Errorf("context with ';' in the trace id must not parse")
	}

	malformed := []string{
		"", "job-abc", "job-abc;1", "job-abc;1;2;3",
		";1;2",        // empty trace id
		"job-abc;x;2", // non-integer span id
		"job-abc;1;y", // non-integer epoch
		"job-abc;0;2", // span id must be positive
	}
	for _, s := range malformed {
		if c, ok := ParseSpanContext(s); ok {
			t.Errorf("ParseSpanContext(%q) = %v, want reject", s, c)
		}
	}
}

func TestInjectExtract(t *testing.T) {
	h := http.Header{}
	Inject(h, SpanContext{}) // invalid: no header
	if v := h.Get(TraceHeader); v != "" {
		t.Fatalf("zero context injected header %q", v)
	}
	if _, ok := Extract(h); ok {
		t.Fatalf("extract from empty headers succeeded")
	}
	want := SpanContext{TraceID: "job-abc", SpanID: 3, Epoch: 2}
	Inject(h, want)
	got, ok := Extract(h)
	if !ok || got != want {
		t.Fatalf("extract: got %v ok=%v, want %v", got, ok, want)
	}

	// A live span's context carries its trace id and span id.
	tr := New("req")
	tr.SetID("trace-1")
	c := tr.Root().Child("shard")
	sc := c.SpanContext()
	if sc.TraceID != "trace-1" || sc.SpanID != 2 {
		t.Fatalf("span context = %v, want trace-1;2", sc)
	}
	var nilSpan *Span
	if nilSpan.SpanContext().Valid() {
		t.Fatalf("nil span must yield an invalid context")
	}
}

// randWire builds a random but canonical wire subtree: exactly one
// value field per attr kind, finite floats, nil (not empty) slices —
// the shape Export itself produces.
func randWire(rng *rand.Rand, depth int) *SpanWire {
	w := &SpanWire{
		Name:    randName(rng),
		StartNs: rng.Int63n(1e9),
	}
	w.EndNs = w.StartNs + rng.Int63n(1e9)
	w.InFlight = rng.Intn(4) == 0
	if n := rng.Intn(4); n > 0 {
		w.Attrs = randWireAttrs(rng, n)
	}
	if n := rng.Intn(3); n > 0 {
		for i := 0; i < n; i++ {
			ev := EventWire{Name: randName(rng), AtNs: w.StartNs + rng.Int63n(1e6)}
			if m := rng.Intn(3); m > 0 {
				ev.Attrs = randWireAttrs(rng, m)
			}
			w.Events = append(w.Events, ev)
		}
	}
	if depth > 0 {
		for i, n := 0, rng.Intn(3); i < n; i++ {
			w.Children = append(w.Children, randWire(rng, depth-1))
		}
	}
	return w
}

func randName(rng *rand.Rand) string {
	const alpha = "abcdefghij-_."
	b := make([]byte, 1+rng.Intn(8))
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

func randWireAttrs(rng *rand.Rand, n int) []WireAttr {
	out := make([]WireAttr, n)
	for i := range out {
		wa := WireAttr{Key: randName(rng)}
		switch rng.Intn(4) {
		case 0:
			wa.Kind = "s"
			wa.Str = randName(rng)
		case 1:
			wa.Kind = "i"
			wa.Int = rng.Int63n(1e6) - 5e5
		case 2:
			wa.Kind = "f"
			wa.Float = rng.NormFloat64()
		case 3:
			wa.Kind = "b"
			wa.Bool = rng.Intn(2) == 0
		}
		out[i] = wa
	}
	return out
}

// TestWireRoundTripByteStable is the property test behind the stitcher:
// a wire subtree grafted at offset zero re-exports byte-identically,
// whatever its shape — in-flight spans included (the graft freezes
// their end timestamps).
func TestWireRoundTripByteStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		w := randWire(rng, 3)
		before, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		tr := New("stitch")
		n := tr.Root().Graft(w, 0)
		if want := w.Nodes(); n != want {
			t.Fatalf("case %d: grafted %d nodes, want %d", i, n, want)
		}
		grafted := tr.root.children[0]
		after, err := json.Marshal(grafted.Export())
		if err != nil {
			t.Fatalf("case %d: re-marshal: %v", i, err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("case %d: round trip not byte-stable\nbefore: %s\nafter:  %s", i, before, after)
		}
	}
}

// TestGraftOffsetShifts checks Graft moves every timestamp by the
// offset, and that GraftRemote picks the offset centering the remote
// interval inside the dispatch envelope (midpoint alignment).
func TestGraftOffsetShifts(t *testing.T) {
	w := &SpanWire{
		Name: "compute", StartNs: 1000, EndNs: 5000,
		Events: []EventWire{{Name: "tick", AtNs: 2000}},
	}
	tr := New("job")
	tr.Root().Graft(w, 100*time.Nanosecond)
	got := tr.root.children[0]
	if got.start != 1100 || got.end != 5100 || got.events[0].At != 2100 {
		t.Fatalf("shifted to start=%d end=%d at=%d, want 1100/5100/2100",
			got.start, got.end, got.events[0].At)
	}

	tr2 := New("job")
	d := tr2.Root().Child("shard")
	d.End()
	d.Graft(nil, 0) // nil wire: no-op
	n := d.GraftRemote(w, "http://w1")
	if n != 2 {
		t.Fatalf("grafted %d nodes, want 2", n)
	}
	c := d.children[0]
	// Midpoint alignment: the grafted interval's midpoint must land on
	// the envelope's midpoint (within integer-division rounding).
	envMid := d.start + d.end
	gotMid := c.start + c.end
	if diff := envMid - gotMid; diff < -1 || diff > 1 {
		t.Fatalf("midpoints differ: envelope %d vs grafted %d", envMid, gotMid)
	}
	if c.end-c.start != 4000 {
		t.Fatalf("grafted duration %d, want 4000", c.end-c.start)
	}
	if v, ok := findAttr(c.attrs, ProcessAttr); !ok || v.s != "http://w1" {
		t.Fatalf("grafted root attrs %v lack %s", c.attrs, ProcessAttr)
	}
	if _, ok := findAttr(d.attrs, "clockOffsetUs"); !ok {
		t.Fatalf("dispatch span attrs %v lack clockOffsetUs", d.attrs)
	}
}

func findAttr(attrs []Attr, key string) (Attr, bool) {
	for _, a := range attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// TestGraftNodeCap checks the cap accounting: a graft into a full trace
// stores nothing, counts every would-be node as dropped, and the drop
// stays visible on the tree, the export, and the process counter.
func TestGraftNodeCap(t *testing.T) {
	tr := New("full")
	root := tr.Root()
	for tr.nodes < maxNodes {
		root.Child("filler")
	}
	before := DroppedTotal()
	w := randWire(rand.New(rand.NewSource(1)), 2)
	if n := root.Graft(w, 0); n != 0 {
		t.Fatalf("graft into a full trace stored %d nodes", n)
	}
	if tr.dropped != w.Nodes() {
		t.Fatalf("trace dropped %d, want %d", tr.dropped, w.Nodes())
	}
	if got := DroppedTotal() - before; got != int64(w.Nodes()) {
		t.Fatalf("DroppedTotal moved by %d, want %d", got, w.Nodes())
	}
	if got := tr.Tree().Root.Attrs[DroppedAttr]; got != w.Nodes() {
		t.Fatalf("tree root %s = %v, want %d", DroppedAttr, got, w.Nodes())
	}
	exp := root.Export()
	last := exp.Attrs[len(exp.Attrs)-1]
	if last.Key != DroppedAttr || last.Int != int64(w.Nodes()) {
		t.Fatalf("export root lacks %s=%d: %+v", DroppedAttr, w.Nodes(), exp.Attrs)
	}
}
