package obs

import (
	"context"
	"log/slog"
	"time"
)

// Log replays the finished trace into a structured logger: one record
// per span (level Debug) carrying the span path, timing and
// attributes, and one per event. It is the bridge between the tracing
// core and log-based pipelines — a daemon running with -v debug
// logging gets every planner decision as a log line without a second
// instrumentation layer.
func (t *Trace) Log(l *slog.Logger) {
	if l == nil || !l.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.root.log(l, t.id, "", now)
}

// log emits one span and recurses (caller holds the trace mutex).
func (s *Span) log(l *slog.Logger, id, path string, now time.Duration) {
	if path == "" {
		path = s.name
	} else {
		path = path + "/" + s.name
	}
	end := s.end
	if !s.ended && !s.frozen {
		end = now
	}
	args := []any{
		slog.String("traceId", id),
		slog.String("span", path),
		slog.Float64("startUs", float64(s.start)/float64(time.Microsecond)),
		slog.Float64("durUs", float64(end-s.start)/float64(time.Microsecond)),
	}
	for _, a := range s.attrs {
		args = append(args, slog.Any(a.Key, a.Value()))
	}
	l.Debug("span", args...)
	for _, e := range s.events {
		eargs := []any{
			slog.String("traceId", id),
			slog.String("span", path),
			slog.String("event", e.Name),
			slog.Float64("atUs", float64(e.At)/float64(time.Microsecond)),
		}
		for _, a := range e.Attrs {
			eargs = append(eargs, slog.Any(a.Key, a.Value()))
		}
		l.Debug("span event", eargs...)
	}
	for _, c := range s.children {
		c.log(l, id, path, now)
	}
}
