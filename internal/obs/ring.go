package obs

import "sync"

// Ring keeps the most recent traces in bounded memory, indexed by the
// ID set with Trace.SetID. The daemon stores every request's trace
// here so GET /v1/traces/{requestId} can retrieve it after the
// response went out; when the ring wraps, the oldest trace (and its
// index entry) is evicted.
type Ring struct {
	mu   sync.Mutex
	slot []*Trace
	byID map[string]*Trace
	next int
	n    int
}

// NewRing returns a ring holding up to capacity traces; capacity < 1
// yields a nil ring, whose methods are no-ops (tracing storage
// disabled).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		return nil
	}
	return &Ring{slot: make([]*Trace, capacity), byID: make(map[string]*Trace, capacity)}
}

// Add stores a trace, evicting the oldest when full. Traces without
// an ID are stored but not retrievable by Get.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.slot[r.next]; old != nil {
		if id := old.ID(); id != "" && r.byID[id] == old {
			delete(r.byID, id)
		}
	} else {
		r.n++
	}
	r.slot[r.next] = t
	if id := t.ID(); id != "" {
		r.byID[id] = t
	}
	r.next = (r.next + 1) % len(r.slot)
}

// Get retrieves a stored trace by ID.
func (r *Ring) Get(id string) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Len reports how many traces are currently stored.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// IDs lists the stored trace IDs, most recent first.
func (r *Ring) IDs() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, r.n)
	for i := 0; i < len(r.slot); i++ {
		// Walk backwards from the most recently written slot.
		idx := (r.next - 1 - i + 2*len(r.slot)) % len(r.slot)
		t := r.slot[idx]
		if t == nil {
			continue
		}
		if id := t.ID(); id != "" {
			out = append(out, id)
		}
	}
	return out
}
