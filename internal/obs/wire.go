package obs

import (
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Cross-process tracing: the pieces that let a span tree span machine
// boundaries.
//
//   - SpanContext is the serializable identity of one span (trace id,
//     span id, coordinator epoch); Inject/Extract move it through an
//     HTTP header on shard dispatches and heartbeats.
//   - SpanWire is the wire form of a completed span subtree: ordered
//     slices, integer-nanosecond timestamps and typed attribute kinds,
//     so that export → import → re-export is byte-stable (the map-based
//     SpanJSON form cannot promise that).
//   - Graft/GraftRemote import a wire subtree under a local span;
//     GraftRemote additionally reconciles the remote monotonic clock
//     against the local one using the dispatch/response envelope.
//
// Timestamps on the wire are nanoseconds since the *origin process's*
// trace epoch — a monotonic-clock anchor, meaningless across machines
// until the stitcher aligns it.

// TraceHeader carries a SpanContext on coordinator→worker requests.
const TraceHeader = "X-Budgetwf-Trace"

// ProcessAttr is the span attribute naming the process a grafted
// subtree came from; the Chrome exporter keys per-worker swimlanes on
// it.
const ProcessAttr = "obs.process"

// DroppedAttr is the root-span attribute counting spans/events the
// node cap silently discarded (only present when non-zero).
const DroppedAttr = "obs.droppedSpans"

// droppedTotal counts node-cap drops across every trace in the
// process, feeding the budgetwfd_trace_spans_dropped_total counter.
var droppedTotal atomic.Int64

// DroppedTotal reports the process-wide number of spans/events
// discarded by the per-trace node cap.
func DroppedTotal() int64 { return droppedTotal.Load() }

// SpanContext is the serializable identity of one span: enough for a
// remote process to tag its own trace as a continuation. Epoch is the
// coordinator incarnation (journal failover counter), not a clock.
type SpanContext struct {
	TraceID string
	SpanID  int
	Epoch   int
}

// Valid reports whether the context identifies a span.
func (c SpanContext) Valid() bool { return c.TraceID != "" && c.SpanID > 0 }

// String renders the header form: "traceID;spanID;epoch".
func (c SpanContext) String() string {
	return c.TraceID + ";" + strconv.Itoa(c.SpanID) + ";" + strconv.Itoa(c.Epoch)
}

// ParseSpanContext parses the header form. It is strict: three
// ';'-separated fields, non-empty trace id, integer span id and epoch.
func ParseSpanContext(s string) (SpanContext, bool) {
	parts := strings.Split(s, ";")
	if len(parts) != 3 || parts[0] == "" {
		return SpanContext{}, false
	}
	spanID, err := strconv.Atoi(parts[1])
	if err != nil {
		return SpanContext{}, false
	}
	epoch, err := strconv.Atoi(parts[2])
	if err != nil {
		return SpanContext{}, false
	}
	c := SpanContext{TraceID: parts[0], SpanID: spanID, Epoch: epoch}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

// SpanContext returns the span's serializable identity (zero on a nil
// span — Inject then sends nothing).
func (s *Span) SpanContext() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	return SpanContext{TraceID: t.id, SpanID: s.id}
}

// Inject writes the context into the request headers; a zero context
// writes nothing, so the disabled-tracing path adds no header.
func Inject(h http.Header, c SpanContext) {
	if c.Valid() {
		h.Set(TraceHeader, c.String())
	}
}

// Extract reads a SpanContext from the request headers.
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceHeader)
	if v == "" {
		return SpanContext{}, false
	}
	return ParseSpanContext(v)
}

// WireAttr is one typed attribute on the wire. Kind is "s", "i", "f"
// or "b"; exactly one value field is meaningful. The explicit kind tag
// (instead of a bare any) keeps import → re-export byte-stable.
type WireAttr struct {
	Key   string  `json:"k"`
	Kind  string  `json:"t"`
	Str   string  `json:"s,omitempty"`
	Int   int64   `json:"i,omitempty"`
	Float float64 `json:"f,omitempty"`
	Bool  bool    `json:"b,omitempty"`
}

// EventWire is one event on the wire.
type EventWire struct {
	Name  string     `json:"name"`
	AtNs  int64      `json:"atNs"`
	Attrs []WireAttr `json:"attrs,omitempty"`
}

// SpanWire is the wire form of one span subtree. Timestamps are
// nanoseconds since the origin process's trace epoch.
type SpanWire struct {
	Name     string      `json:"name"`
	StartNs  int64       `json:"startNs"`
	EndNs    int64       `json:"endNs"`
	InFlight bool        `json:"inFlight,omitempty"`
	Attrs    []WireAttr  `json:"attrs,omitempty"`
	Events   []EventWire `json:"events,omitempty"`
	Children []*SpanWire `json:"children,omitempty"`
}

// Nodes counts the spans plus events of the subtree — the amount of
// node-cap budget a graft would consume.
func (w *SpanWire) Nodes() int {
	if w == nil {
		return 0
	}
	n := 1 + len(w.Events)
	for _, c := range w.Children {
		n += c.Nodes()
	}
	return n
}

// wireAttrs converts in-memory attributes to the wire form.
func wireAttrs(attrs []Attr) []WireAttr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]WireAttr, len(attrs))
	for i, a := range attrs {
		wa := WireAttr{Key: a.Key}
		switch a.kind {
		case kindInt:
			wa.Kind = "i"
			wa.Int = a.i
		case kindFloat:
			wa.Kind = "f"
			wa.Float = a.f
		case kindBool:
			wa.Kind = "b"
			wa.Bool = a.i != 0
		default:
			wa.Kind = "s"
			wa.Str = a.s
		}
		out[i] = wa
	}
	return out
}

// attrsFromWire converts wire attributes back to the in-memory form.
// An unknown kind degrades to a string rather than dropping the key.
func attrsFromWire(ws []WireAttr) []Attr {
	if len(ws) == 0 {
		return nil
	}
	out := make([]Attr, len(ws))
	for i, wa := range ws {
		switch wa.Kind {
		case "i":
			out[i] = Int64(wa.Key, wa.Int)
		case "f":
			out[i] = Float(wa.Key, wa.Float)
		case "b":
			out[i] = Bool(wa.Key, wa.Bool)
		default:
			out[i] = Str(wa.Key, wa.Str)
		}
	}
	return out
}

// Export snapshots the span's subtree in the wire form. In-flight
// spans are marked and their end pinned at the snapshot instant, so an
// exported subtree is self-contained. When the owning trace has
// dropped nodes at the cap the exported root carries DroppedAttr —
// truncation must stay visible after stitching. Nil-safe: a nil span
// exports nil.
func (s *Span) Export() *SpanWire {
	if s == nil {
		return nil
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	w := s.exportLocked(t.now())
	if t.dropped > 0 {
		w.Attrs = append(w.Attrs, WireAttr{Key: DroppedAttr, Kind: "i", Int: int64(t.dropped)})
	}
	return w
}

// exportLocked renders one span (caller holds the trace mutex).
func (s *Span) exportLocked(now time.Duration) *SpanWire {
	end := s.end
	inFlight := !s.ended
	if inFlight && !s.frozen {
		end = now
	}
	w := &SpanWire{
		Name:     s.name,
		StartNs:  int64(s.start),
		EndNs:    int64(end),
		InFlight: inFlight,
		Attrs:    wireAttrs(s.attrs),
	}
	for _, e := range s.events {
		w.Events = append(w.Events, EventWire{
			Name:  e.Name,
			AtNs:  int64(e.At),
			Attrs: wireAttrs(e.Attrs),
		})
	}
	for _, c := range s.children {
		w.Children = append(w.Children, c.exportLocked(now))
	}
	return w
}

// Graft imports a wire subtree as a new child of s, shifting every
// timestamp by offset onto this trace's timeline. Imported spans are
// frozen: their (shifted) end timestamps are final even when marked
// in-flight, so a grafted subtree re-exports byte-identically at
// offset zero. The node cap applies — spans/events beyond it are
// counted as dropped, never stored. Returns the number of nodes
// actually grafted.
func (s *Span) Graft(w *SpanWire, offset time.Duration) int {
	if s == nil || w == nil {
		return 0
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.graftLocked(s, w, offset)
}

// graftLocked imports one wire span (caller holds the trace mutex).
func (t *Trace) graftLocked(parent *Span, w *SpanWire, offset time.Duration) int {
	if t.nodes >= maxNodes {
		d := w.Nodes()
		t.dropped += d
		droppedTotal.Add(int64(d))
		return 0
	}
	t.nodes++
	t.seq++
	c := &Span{
		trace:  t,
		id:     t.seq,
		name:   w.Name,
		start:  offset + time.Duration(w.StartNs),
		end:    offset + time.Duration(w.EndNs),
		ended:  !w.InFlight,
		frozen: true,
		attrs:  attrsFromWire(w.Attrs),
	}
	parent.children = append(parent.children, c)
	n := 1
	for _, e := range w.Events {
		if t.nodes >= maxNodes {
			t.dropped++
			droppedTotal.Add(1)
			continue
		}
		t.nodes++
		n++
		c.events = append(c.events, Event{
			Name:  e.Name,
			At:    offset + time.Duration(e.AtNs),
			Attrs: attrsFromWire(e.Attrs),
		})
	}
	for _, ch := range w.Children {
		n += t.graftLocked(c, ch, offset)
	}
	return n
}

// GraftRemote grafts a worker-exported subtree under the dispatch span
// s, reconciling the remote monotonic clock against the local one: the
// wire root's [start, end] interval (the worker's own monotonic
// anchors) is centered inside s's dispatch/response envelope
// [s.start, now], the midpoint alignment that splits the network round
// trip symmetrically. The grafted root is tagged with ProcessAttr so
// exporters can lane it per worker, and s records the applied offset
// in microseconds. Returns the number of nodes grafted.
func (s *Span) GraftRemote(w *SpanWire, process string) int {
	if s == nil || w == nil {
		return 0
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	envStart, envEnd := s.start, t.now()
	if s.ended {
		envEnd = s.end
	}
	offset := ((envStart + envEnd) - time.Duration(w.StartNs+w.EndNs)) / 2
	tagged := *w
	tagged.Attrs = append(append([]WireAttr(nil), w.Attrs...),
		WireAttr{Key: ProcessAttr, Kind: "s", Str: process})
	n := t.graftLocked(s, &tagged, offset)
	s.attrs = append(s.attrs, Float("clockOffsetUs", float64(offset)/float64(time.Microsecond)))
	return n
}
