package budgetwf

import "testing"

func TestFacadeExecuteFaulty(t *testing.T) {
	w, err := Generate(Montage, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := DefaultPlatform()
	s, err := HeftBudg(w, p, 1.0)
	if err != nil {
		t.Fatal(err)
	}

	// A zero spec injects nothing: the run completes.
	clean, err := ExecuteFaulty(w, p, s, 42, &FaultSpec{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Completed || clean.TasksDone != w.NumTasks() || clean.Crashes != 0 {
		t.Fatalf("zero-spec run not clean: %+v", clean)
	}
	for _, st := range clean.TaskStatus {
		if st != TaskDone {
			t.Fatalf("zero-spec run has non-done task status %v", st)
		}
	}

	// A hostile spec under a lifted guard still returns a report, not
	// an error, whatever the budget guard and retry caps decided.
	spec := &FaultSpec{
		CrashRatePerHour: []float64{200},
		Recovery:         RecoverReplicate,
		Seed:             7,
	}
	r, err := ExecuteFaulty(w, p, s, 42, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.TasksDone+r.TasksFailed != w.NumTasks() {
		t.Fatalf("statuses do not cover the workflow: %+v", r)
	}

	// Invalid specs are named-field errors.
	if _, err := ExecuteFaulty(w, p, s, 42, &FaultSpec{Recovery: "hope"}, 0); err == nil {
		t.Fatal("invalid recovery accepted")
	}
}
