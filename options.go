package budgetwf

import "budgetwf/internal/sched"

// PlannerOptions switches individual design choices of the
// budget-aware planners on or off — the knobs behind the ablation
// study (`paperfigs -fig ablations`) and the insertion-policy
// extension. The zero value is the paper's algorithm.
type PlannerOptions = sched.Options

// HeftBudgWithOptions is HeftBudg under the given options: disable the
// conservative weights, the pot, or the Algorithm-1 reserves to
// measure their contribution, or enable the original HEFT insertion
// placement policy.
func HeftBudgWithOptions(w *Workflow, p *Platform, budget float64, opt PlannerOptions) (*Schedule, error) {
	return sched.HeftBudgOpt(w, p, budget, opt)
}

// MinMinBudgWithOptions is MinMinBudg under the given options
// (the insertion policy is HEFT-family only and is ignored here).
func MinMinBudgWithOptions(w *Workflow, p *Platform, budget float64, opt PlannerOptions) (*Schedule, error) {
	return sched.MinMinBudgOpt(w, p, budget, opt)
}

// AlgPeft names the PEFT extension baseline (Arabnejad & Barbosa,
// TPDS 2014): HEFT's successor with one-step lookahead through an
// Optimistic Cost Table. Not part of the paper's algorithm set;
// resolvable via ScheduleWith and listed by AlgorithmsExtended.
const AlgPeft = sched.NamePeft

// Peft plans with the budget-blind PEFT extension baseline.
func Peft(w *Workflow, p *Platform) (*Schedule, error) {
	return sched.Peft(w, p)
}

// AlgorithmsExtended returns the paper's nine algorithms plus the
// extension baselines.
func AlgorithmsExtended() []AlgorithmName {
	var out []AlgorithmName
	for _, a := range sched.AllExtended() {
		out = append(out, a.Name)
	}
	return out
}
