package budgetwf_test

import (
	"fmt"

	"budgetwf"
)

// ExampleGenerate builds one of the paper's benchmark workflows and
// inspects its shape.
func ExampleGenerate() {
	w, err := budgetwf.Generate(budgetwf.Montage, 90, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(w.Name)
	fmt.Println("tasks:", w.NumTasks(), "edges:", w.NumEdges())
	fmt.Println("entries:", len(w.Entries()), "exits:", len(w.Exits()))
	// Output:
	// MONTAGE-90-seed0
	// tasks: 90 edges: 172
	// entries: 28 exits: 1
}

// ExampleHeftBudg plans a workflow under a budget and verifies the
// plan deterministically: under the planner's own conservative
// weights, the realized cost never exceeds the budget.
func ExampleHeftBudg() {
	w, _ := budgetwf.Generate(budgetwf.Montage, 30, 0)
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()

	anchors, _ := budgetwf.ComputeAnchors(w, p)
	budget := 1.5 * anchors.CheapCost
	s, _ := budgetwf.HeftBudg(w, p, budget)
	res, _ := budgetwf.SimulateDeterministic(w, p, s)

	fmt.Println("within budget:", res.TotalCost <= budget)
	fmt.Println("faster than one slow VM:", res.Makespan < anchors.CheapMakespan)
	// Output:
	// within budget: true
	// faster than one slow VM: true
}

// ExampleReplicateBudget measures a plan under stochastic task
// weights, the paper's evaluation loop.
func ExampleReplicateBudget() {
	w, _ := budgetwf.Generate(budgetwf.Ligo, 30, 0)
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()
	anchors, _ := budgetwf.ComputeAnchors(w, p)
	budget := 1.1 * anchors.CheapCost
	s, _ := budgetwf.HeftBudg(w, p, budget)

	rep, _ := budgetwf.ReplicateBudget(w, p, s, 25, 42, budget)
	fmt.Printf("runs: %d, all within budget: %v\n", rep.Makespan.N, rep.ValidFrac == 1)
	// Output:
	// runs: 25, all within budget: true
}

// ExampleAlgorithms lists the nine algorithms of the paper's
// evaluation.
func ExampleAlgorithms() {
	for _, name := range budgetwf.Algorithms() {
		fmt.Println(name)
	}
	// Output:
	// minmin
	// heft
	// minminbudg
	// heftbudg
	// heftbudg+
	// heftbudg+inv
	// bdt
	// cg
	// cg+
}

// ExampleNewWorkflow constructs a workflow by hand.
func ExampleNewWorkflow() {
	w := budgetwf.NewWorkflow("two-step")
	extract := w.AddTask("extract", budgetwf.Dist{Mean: 60e9, Sigma: 12e9})
	report := w.AddTask("report", budgetwf.Dist{Mean: 20e9, Sigma: 2e9})
	w.MustAddEdge(extract, report, 250e6)
	_ = w.SetExternalIO(extract, 1e9, 0)

	fmt.Println("valid:", w.Validate() == nil)
	fmt.Printf("total mean work: %.0f Ginstr\n", w.TotalMeanWork()/1e9)
	// Output:
	// valid: true
	// total mean work: 80 Ginstr
}
