// Package budgetwf is a library for budget-aware scheduling of
// scientific workflows with stochastic task weights on heterogeneous
// IaaS Cloud platforms. It reproduces, end to end, the system of
//
//	Y. Caniou, E. Caron, A. Kong Win Chang, Y. Robert,
//	"Budget-aware scheduling algorithms for scientific workflows with
//	stochastic task weights on heterogeneous IaaS Cloud platforms",
//	IPDPSW 2018 (hal-01808831).
//
// The package bundles:
//
//   - a workflow model (DAGs with Gaussian task weights and data
//     transfers), plus generators for the Pegasus benchmark families
//     CYBERSHAKE, LIGO and MONTAGE;
//   - an IaaS platform model: heterogeneous VM categories with
//     per-second billing, setup costs and boot delays, communicating
//     through a single datacenter;
//   - nine scheduling algorithms: the MIN-MIN and HEFT baselines, the
//     paper's budget-aware MIN-MINBUDG / HEFTBUDG, the refined
//     HEFTBUDG+ / HEFTBUDG+INV, and the extended competitors BDT and
//     CG/CG+;
//   - a discrete-event simulator executing schedules under realized
//     stochastic weights;
//   - an experiment harness regenerating every figure and table of the
//     paper's evaluation section.
//
// The typical flow is: obtain a *Workflow (generate, build, or load),
// pick a *Platform (DefaultPlatform matches the paper's Table II),
// plan with one of the Schedule* functions under a budget, and then
// Simulate the plan one or many times:
//
//	w, _ := budgetwf.Generate(budgetwf.Montage, 90, 0)
//	w = w.WithSigmaRatio(0.5)
//	p := budgetwf.DefaultPlatform()
//	s, _ := budgetwf.HeftBudg(w, p, 0.10) // a $0.10 budget
//	res, _ := budgetwf.ReplicateBudget(w, p, s, 25, 42, 0.10)
//	fmt.Println(res.Makespan.Mean, res.Cost.Mean, res.ValidFrac)
package budgetwf

import (
	"context"
	"strings"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/sched"
	"budgetwf/internal/sim"
	"budgetwf/internal/stats"
	"budgetwf/internal/stoch"
	"budgetwf/internal/wf"
	"budgetwf/internal/wfgen"
)

// Workflow is a DAG of tasks with stochastic weights. See NewWorkflow,
// Generate and LoadWorkflow for the three ways to obtain one.
type Workflow = wf.Workflow

// Task is one vertex of a workflow.
type Task = wf.Task

// TaskID identifies a task within its workflow.
type TaskID = wf.TaskID

// Edge is a data dependency between two tasks.
type Edge = wf.Edge

// Dist is the Gaussian weight distribution of a task (mean number of
// instructions and standard deviation).
type Dist = stoch.Dist

// NewWorkflow returns an empty named workflow ready for AddTask /
// AddEdge construction.
func NewWorkflow(name string) *Workflow { return wf.New(name) }

// LoadWorkflow reads a workflow from a JSON file produced by
// (*Workflow).SaveFile or cmd/wfgen. Files ending in .dax or .xml are
// parsed as Pegasus DAX v3 documents instead.
func LoadWorkflow(path string) (*Workflow, error) {
	if strings.HasSuffix(path, ".dax") || strings.HasSuffix(path, ".xml") {
		return wf.LoadDAX(path)
	}
	return wf.LoadFile(path)
}

// LoadDAX reads a Pegasus DAX v3 workflow description — the native
// format of the Pegasus generator behind the paper's benchmarks.
func LoadDAX(path string) (*Workflow, error) { return wf.LoadDAX(path) }

// WorkflowType selects a generator family.
type WorkflowType = wfgen.Type

// The workflow families: the paper's three Pegasus benchmarks, two
// extension families from the same suite, and generic synthetic
// shapes.
const (
	CyberShake  = wfgen.CyberShake
	Ligo        = wfgen.Ligo
	Montage     = wfgen.Montage
	Epigenomics = wfgen.Epigenomics
	Sipht       = wfgen.Sipht
	Random      = wfgen.Random
	Chain       = wfgen.Chain
	ForkJoin    = wfgen.ForkJoin
	BagOfTasks  = wfgen.BagOfTasks
)

// Generate builds one workflow instance with n tasks. Generated
// workflows carry σ = 0; apply WithSigmaRatio to instantiate
// uncertainty, as the paper does with ratios 0.25–1.00.
func Generate(t WorkflowType, n int, seed uint64) (*Workflow, error) {
	return wfgen.Generate(t, n, seed)
}

// Platform describes the IaaS provider: VM categories, datacenter
// costs, bandwidth and boot time.
type Platform = platform.Platform

// VMCategory is one VM type (speed, per-second cost, setup cost).
type VMCategory = platform.Category

// DefaultPlatform returns the paper's Table II instantiation (three
// categories, 1 Gb/s links, per-second billing). See DESIGN.md for the
// reconstruction of the unreadable published values.
func DefaultPlatform() *Platform { return platform.Default() }

// Schedule maps every task of a workflow to a provisioned VM with a
// per-VM execution order.
type Schedule = plan.Schedule

// AlgorithmName names one of the nine scheduling algorithms.
type AlgorithmName = sched.Name

// The algorithm registry names.
const (
	AlgMinMin          = sched.NameMinMin
	AlgHeft            = sched.NameHeft
	AlgMinMinBudg      = sched.NameMinMinBudg
	AlgHeftBudg        = sched.NameHeftBudg
	AlgHeftBudgPlus    = sched.NameHeftBudgPlus
	AlgHeftBudgPlusInv = sched.NameHeftBudgPlusInv
	AlgBDT             = sched.NameBDT
	AlgCG              = sched.NameCG
	AlgCGPlus          = sched.NameCGPlus
)

// MinMin plans with the classical budget-blind MIN-MIN heuristic.
func MinMin(w *Workflow, p *Platform) (*Schedule, error) { return sched.MinMin(w, p) }

// Heft plans with the classical budget-blind HEFT heuristic.
func Heft(w *Workflow, p *Platform) (*Schedule, error) { return sched.Heft(w, p) }

// MinMinBudg plans with the budget-aware MIN-MINBUDG (Algorithm 3).
func MinMinBudg(w *Workflow, p *Platform, budget float64) (*Schedule, error) {
	return sched.MinMinBudg(w, p, budget)
}

// HeftBudg plans with the budget-aware HEFTBUDG (Algorithm 4).
func HeftBudg(w *Workflow, p *Platform, budget float64) (*Schedule, error) {
	return sched.HeftBudg(w, p, budget)
}

// HeftBudgPlus refines a HEFTBUDG schedule by re-assigning tasks in
// priority order to spend leftover budget (Algorithm 5).
func HeftBudgPlus(w *Workflow, p *Platform, budget float64) (*Schedule, error) {
	return sched.HeftBudgPlus(w, p, budget)
}

// HeftBudgPlusInv is HeftBudgPlus with reverse task order.
func HeftBudgPlusInv(w *Workflow, p *Platform, budget float64) (*Schedule, error) {
	return sched.HeftBudgPlusInv(w, p, budget)
}

// BDT plans with the extended Budget Distribution with Trickling
// competitor.
func BDT(w *Workflow, p *Platform, budget float64) (*Schedule, error) {
	return sched.BDT(w, p, budget)
}

// CG plans with the extended Critical Greedy competitor.
func CG(w *Workflow, p *Platform, budget float64) (*Schedule, error) {
	return sched.CG(w, p, budget)
}

// CGPlus is CG followed by the critical-path ΔT/Δc refinement.
func CGPlus(w *Workflow, p *Platform, budget float64) (*Schedule, error) {
	return sched.CGPlus(w, p, budget)
}

// ScheduleWith plans using the algorithm registry; baselines ignore
// the budget.
func ScheduleWith(name AlgorithmName, w *Workflow, p *Platform, budget float64) (*Schedule, error) {
	a, err := sched.ByName(name)
	if err != nil {
		return nil, err
	}
	return a.Plan(w, p, budget)
}

// ScheduleWithContext is ScheduleWith under a context: cancellation
// and deadlines are polled between placement steps inside the
// planners, so an abandoned request stops consuming CPU almost
// immediately. This is the entry point the budgetwfd daemon uses to
// enforce per-request timeouts.
func ScheduleWithContext(ctx context.Context, name AlgorithmName, w *Workflow, p *Platform, budget float64) (*Schedule, error) {
	return sched.PlanContext(ctx, name, w, p, budget)
}

// Algorithms returns the names of all nine algorithms in the paper's
// order.
func Algorithms() []AlgorithmName {
	var out []AlgorithmName
	for _, a := range sched.All() {
		out = append(out, a.Name)
	}
	return out
}

// SimResult is the realized outcome of one simulated execution.
type SimResult = sim.Result

// Simulate executes the schedule once with task weights sampled from
// their distributions (seeded for reproducibility).
func Simulate(w *Workflow, p *Platform, s *Schedule, seed uint64) (*SimResult, error) {
	return sim.RunStochastic(w, p, s, rng.New(seed))
}

// SimulateDeterministic executes the schedule under the conservative
// weights (w̄+σ) the planner assumed.
func SimulateDeterministic(w *Workflow, p *Platform, s *Schedule) (*SimResult, error) {
	return sim.RunDeterministic(w, p, s)
}

// Replication aggregates repeated stochastic executions of one
// schedule.
type Replication struct {
	// Makespan and Cost summarize the realized executions.
	Makespan stats.Summary
	Cost     stats.Summary
	// ValidFrac is the fraction of executions whose cost stayed within
	// Budget (only meaningful if Budget > 0).
	ValidFrac float64
	// Budget echoes the budget used for the validity check.
	Budget float64
}

// Replicate runs n stochastic executions of the schedule and
// summarizes them; budget 0 disables the validity accounting.
func Replicate(w *Workflow, p *Platform, s *Schedule, n int, seed uint64) (*Replication, error) {
	return ReplicateBudget(w, p, s, n, seed, 0)
}

// ReplicateBudget is Replicate with a budget-validity check.
func ReplicateBudget(w *Workflow, p *Platform, s *Schedule, n int, seed uint64, budget float64) (*Replication, error) {
	return ReplicateBudgetContext(context.Background(), w, p, s, n, seed, budget)
}

// ReplicateBudgetContext is ReplicateBudget under a context,
// cancellation being polled between stochastic executions.
func ReplicateBudgetContext(ctx context.Context, w *Workflow, p *Platform, s *Schedule, n int, seed uint64, budget float64) (*Replication, error) {
	stream := rng.New(seed)
	var mk, cost []float64
	valid := 0
	runner, err := sim.NewRunner(w, p, s)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := runner.RunStochastic(stream.Split(uint64(i)))
		if err != nil {
			return nil, err
		}
		mk = append(mk, r.Makespan)
		cost = append(cost, r.TotalCost)
		if budget <= 0 || r.TotalCost <= budget {
			valid++
		}
	}
	out := &Replication{
		Makespan: stats.Summarize(mk),
		Cost:     stats.Summarize(cost),
		Budget:   budget,
	}
	if n > 0 {
		out.ValidFrac = float64(valid) / float64(n)
	}
	return out, nil
}
