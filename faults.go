package budgetwf

import (
	"budgetwf/internal/fault"
	"budgetwf/internal/online"
	"budgetwf/internal/rng"
	"budgetwf/internal/sim"
)

// FaultSpec configures fault injection: per-category VM crash rates
// (crashes per VM-hour, exponential inter-arrival), a boot-failure
// probability, a transient task-failure probability, and the recovery
// policy applied under the budget guard. The zero value injects
// nothing.
type FaultSpec = fault.Spec

// FaultFieldError names the offending field of an invalid FaultSpec.
type FaultFieldError = fault.FieldError

// TaskStatus is the per-task outcome of a fault-injected execution.
type TaskStatus = fault.TaskStatus

// Task outcomes.
const (
	TaskDone   = fault.StatusDone
	TaskFailed = fault.StatusFailed
)

// Recovery policy names accepted by FaultSpec.Recovery.
const (
	// RecoverRetrySame reboots a replacement VM of the same category
	// after a capped exponential backoff and replays the lost tasks.
	RecoverRetrySame = "retry-same"
	// RecoverResubmitFastest resubmits lost tasks to a fresh VM of the
	// fastest category.
	RecoverResubmitFastest = "resubmit-fastest"
	// RecoverReplicate runs each recovery attempt on two VMs at once;
	// the first finisher wins and the loser is cancelled.
	RecoverReplicate = "replicate"
)

// ExecuteFaulty runs one fault-injected execution of the schedule with
// task weights sampled from their distributions, under the given
// recovery budget (0 lifts the guard). Crashed and boot-failed VM time
// stays billed; outputs already uploaded to the datacenter survive
// their VM's crash. A run the budget guard or the retry caps cut short
// degrades to a partial OnlineReport (Completed false, per-task
// TaskStatus) — it is not an error.
func ExecuteFaulty(w *Workflow, p *Platform, s *Schedule, seed uint64, spec *FaultSpec, budget float64) (*OnlineReport, error) {
	return online.ExecuteFaulty(w, p, s, sim.SampleWeights(w, rng.New(seed)), spec, budget)
}
