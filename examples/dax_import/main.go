// DAX import: schedule a real-world workflow description. Pegasus DAX
// is the format the paper's benchmark workflows were originally
// distributed in; this example loads the classic "black diamond" DAX,
// instantiates uncertainty on its profiled runtimes, and compares every
// algorithm under a tight budget.
//
// Run with: go run ./examples/dax_import
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"budgetwf"
)

func main() {
	path := filepath.Join(exampleDir(), "blackdiamond.dax")
	w, err := budgetwf.LoadDAX(path)
	if err != nil {
		log.Fatal(err)
	}
	// DAX runtimes are point estimates; model ±40% input-dependent
	// variation, as a user with profiled-but-noisy traces would.
	w = w.WithSigmaRatio(0.4)

	fmt.Printf("loaded %s: %d tasks, %d dependencies, %.1f GB external input\n\n",
		w.Name, w.NumTasks(), w.NumEdges(), w.ExternalInSize()/1e9)

	p := budgetwf.DefaultPlatform()
	anchors, err := budgetwf.ComputeAnchors(w, p)
	if err != nil {
		log.Fatal(err)
	}
	budget := 1.2 * anchors.CheapCost
	fmt.Printf("budget $%.4f (cheapest $%.4f, HEFT baseline $%.4f at %.0f s)\n\n",
		budget, anchors.CheapCost, anchors.BaselineCost, anchors.BaselineMakespan)

	fmt.Printf("%-14s %12s %10s %6s %7s\n", "algorithm", "makespan [s]", "cost [$]", "VMs", "valid")
	for _, name := range budgetwf.Algorithms() {
		s, err := budgetwf.ScheduleWith(name, w, p, budget)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := budgetwf.ReplicateBudget(w, p, s, 25, 7, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.1f %10.4f %6d %6.0f%%\n",
			name, rep.Makespan.Mean, rep.Cost.Mean, s.NumVMs(), 100*rep.ValidFrac)
	}
}

// exampleDir locates this example's directory whether the program is
// run via `go run ./examples/dax_import` (cwd = repo root) or from
// inside the directory.
func exampleDir() string {
	if _, err := os.Stat("blackdiamond.dax"); err == nil {
		return "."
	}
	return filepath.Join("examples", "dax_import")
}
