// Online re-scheduling: the paper's §VI future-work direction,
// evaluated under a heavy-tail weight model. A small fraction of tasks
// suffers pathological 15× slowdowns (data-dependent blow-ups the
// Gaussian model cannot produce); the online controller detects them
// through 3.5σ timeouts and restarts them on fresh fastest-category
// VMs. The run compares three modes:
//
//   - static: the schedule is executed as planned (internal/sim);
//   - online unguarded: every timeout migrates, budget be damned;
//   - online guarded: migrations happen only while the projected
//     total spend stays within the initial budget.
//
// The outcome illustrates exactly the risk the paper names: "such
// dynamic decisions encompass risks in terms of both final makespan
// and budget" (§VI).
//
// Run with: go run ./examples/online_rescheduling
package main

import (
	"fmt"
	"log"

	"budgetwf"
	"budgetwf/internal/stats"
)

func main() {
	p := budgetwf.DefaultPlatform()
	w, err := budgetwf.Generate(budgetwf.Montage, 60, 0)
	if err != nil {
		log.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	anchors, err := budgetwf.ComputeAnchors(w, p)
	if err != nil {
		log.Fatal(err)
	}
	// A budget in the mixed-category regime: most tasks sit on slow or
	// medium VMs, so a straggler has somewhere faster to go.
	budget := 1.3 * anchors.CheapCost
	s, err := budgetwf.HeftBudg(w, p, budget)
	if err != nil {
		log.Fatal(err)
	}

	outliers := budgetwf.Outliers{Prob: 0.06, Factor: 15}
	// 3.5σ timeouts: a Gaussian task exceeds them with probability
	// ≈0.02%, so in practice only the pathological blow-ups fire the
	// monitor (2σ would also catch ordinary unlucky draws, whose thin
	// residual work never repays a fresh VM's boot).
	unguarded := budgetwf.OnlinePolicy{TimeoutSigma: 3.5, MaxMigrations: 1}
	guarded := budgetwf.OnlinePolicy{TimeoutSigma: 3.5, MaxMigrations: 1, Budget: budget}
	// The gain rule additionally waits until a fast restart is clearly
	// amortized before interrupting (GainFactor 1), filtering the
	// ordinary-tail false positives that never repay a fresh boot.
	gainRuled := budgetwf.OnlinePolicy{TimeoutSigma: 3.5, GainFactor: 1, MaxMigrations: 1, Budget: budget}

	type agg struct {
		mk, cost []float64
		valid    int
		migs     int
		vetoed   int
	}
	var static, free, safe, ruled agg
	record := func(a *agg, mk, cost float64, migs, vetoed int) {
		a.mk = append(a.mk, mk)
		a.cost = append(a.cost, cost)
		if cost <= budget {
			a.valid++
		}
		a.migs += migs
		a.vetoed += vetoed
	}

	const reps = 50
	for i := uint64(0); i < reps; i++ {
		st, onFree, err := budgetwf.ExecuteOnlineOutliers(w, p, s, i, outliers, unguarded)
		if err != nil {
			log.Fatal(err)
		}
		_, onSafe, err := budgetwf.ExecuteOnlineOutliers(w, p, s, i, outliers, guarded)
		if err != nil {
			log.Fatal(err)
		}
		_, onRuled, err := budgetwf.ExecuteOnlineOutliers(w, p, s, i, outliers, gainRuled)
		if err != nil {
			log.Fatal(err)
		}
		record(&static, st.Makespan, st.TotalCost, 0, 0)
		record(&free, onFree.Makespan, onFree.TotalCost, len(onFree.Migrations), onFree.Vetoed)
		record(&safe, onSafe.Makespan, onSafe.TotalCost, len(onSafe.Migrations), onSafe.Vetoed)
		record(&ruled, onRuled.Makespan, onRuled.TotalCost, len(onRuled.Migrations), onRuled.Vetoed)
	}

	fmt.Printf("workflow %s, budget $%.4f, %d runs, 6%% chance of a 15× task blow-up\n\n", w.Name, budget, reps)
	fmt.Printf("%-18s %10s %10s %10s %12s %8s %12s\n",
		"mode", "mean [s]", "P95 [s]", "worst [s]", "cost [$]", "valid", "migrations")
	row := func(name string, a agg) {
		fmt.Printf("%-18s %10.1f %10.1f %10.1f %12.4f %5d/%d %8d (%d vetoed)\n",
			name, stats.Mean(a.mk), stats.Percentile(a.mk, 95), stats.Percentile(a.mk, 100),
			stats.Mean(a.cost), a.valid, reps, a.migs, a.vetoed)
	}
	row("static", static)
	row("online unguarded", free)
	row("online guarded", safe)
	row("guarded + gain", ruled)

	fmt.Println("\nUnguarded monitoring buys the best tail makespan but overspends;")
	fmt.Println("the budget guard keeps part of the gain while limiting the damage —")
	fmt.Println("the §VI trade-off, quantified. With purely Gaussian weights the")
	fmt.Println("expected residual work after a timeout is ≈0.4σ and no migration")
	fmt.Println("would ever pay for a fresh VM's 60 s boot.")
}
