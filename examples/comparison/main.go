// Comparison: all nine scheduling algorithms head-to-head on one
// workflow instance at three budget levels (low / medium / high, as in
// Table III), reporting realized makespan, cost, VM count and budget
// validity for each.
//
// Run with: go run ./examples/comparison [-type ligo] [-n 30]
package main

import (
	"flag"
	"fmt"
	"log"

	"budgetwf"
)

func main() {
	typName := flag.String("type", "cybershake", "workflow family")
	n := flag.Int("n", 30, "workflow size")
	flag.Parse()

	w, err := budgetwf.Generate(budgetwf.WorkflowType(*typName), *n, 0)
	if err != nil {
		log.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()
	anchors, err := budgetwf.ComputeAnchors(w, p)
	if err != nil {
		log.Fatal(err)
	}

	levels := []struct {
		name   string
		budget float64
	}{
		{"low", anchors.CheapCost},
		{"medium", (anchors.CheapCost + anchors.High) / 2},
		{"high", anchors.High},
	}

	fmt.Printf("workflow %s — cheapest $%.4f, HEFT baseline $%.4f (makespan %.0f s)\n",
		w.Name, anchors.CheapCost, anchors.BaselineCost, anchors.BaselineMakespan)
	for _, level := range levels {
		fmt.Printf("\n=== %s budget: $%.4f ===\n", level.name, level.budget)
		fmt.Printf("%-14s %12s %12s %6s %7s\n", "algorithm", "makespan [s]", "cost [$]", "VMs", "valid")
		for _, name := range budgetwf.Algorithms() {
			s, err := budgetwf.ScheduleWith(name, w, p, level.budget)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := budgetwf.ReplicateBudget(w, p, s, 15, 11, level.budget)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %12.1f %12.4f %6d %6.0f%%\n",
				name, rep.Makespan.Mean, rep.Cost.Mean, s.NumVMs(), 100*rep.ValidFrac)
		}
	}
	fmt.Println("\nBaselines (minmin, heft) ignore the budget: at the low level they")
	fmt.Println("overspend. The budget-aware variants trade makespan for validity.")
}
