// Spot-market economics: is preemptible capacity worth the risk?
//
// A two-provider market (internal/market) prices the home provider's
// categories next to a cheaper neighbor reachable over a paid transfer
// link. The sweep (exp.RunSpotSweep) derives spot twins of every
// category over a discount × revocation-rate grid: at each market
// condition the spot-aware planner (sched.SpotVariant) prices the
// expected revocation rework into its category choices, pins sink
// tasks to on-demand siblings, and the online executor replays
// revocation-injected executions — a revoked spot VM is billed for
// its uptime, its lost work resubmits to the on-demand sibling, and
// the budget guard arbitrates every recovery.
//
// The baseline is a deadline-driven user: plain HEFT plans for pure
// makespan on the identical on-demand catalog, under the same budgets
// and the same realized task weights. The spot twin of the fastest
// category runs at the same speed, so the market's promise is a
// cheaper bill for the same timeline — and the frontier shows exactly
// when that promise holds: at calm hazards the saving tracks the
// discount at unchanged success probability, and as the revocation
// rate grows, billed-but-wasted uptime plus on-demand resubmissions
// claw it back until spot costs more than on-demand.
//
// Run with: go run ./examples/spotmarket
package main

import (
	"fmt"
	"log"

	"budgetwf/internal/exp"
	"budgetwf/internal/market"
	"budgetwf/internal/sched"
	"budgetwf/internal/wfgen"
)

func main() {
	// On-demand price sheets only: the sweep derives the spot twins per
	// grid point, so every (discount, rate) condition competes on the
	// same base market.
	spec, err := market.ParseSpecBytes([]byte(`{
		"providers": [
			{"name": "home", "categories": [
				{"name": "small", "speed": 1e9, "costPerSec": 6.444e-6, "initCost": 0.0001},
				{"name": "large", "speed": 4e9, "costPerSec": 5.155e-5, "initCost": 0.0001}
			]},
			{"name": "neighbor", "categories": [
				{"name": "std", "speed": 2e9, "costPerSec": 1.6e-5, "initCost": 0.0001}
			]}
		],
		"transfer": [[{}, {"costPerGB": 0.02, "latencySec": 0.5}],
		             [{"costPerGB": 0.02, "latencySec": 0.5}, {}]]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	plat, err := spec.Compile()
	if err != nil {
		log.Fatal(err)
	}
	heft, err := sched.ByName(sched.NameHeft)
	if err != nil {
		log.Fatal(err)
	}

	sc := exp.SpotScenario{
		Scenario: exp.Scenario{
			Type:       wfgen.Montage,
			N:          20,
			SigmaRatio: 0.5,
			Platform:   plat,
			Instances:  5,
			Reps:       40,
			Seed:       42,
			Estimator:  exp.EstimatorMC,
		},
		Alg: heft,
		// The guard budget is generous (6 × cheapest feasible cost):
		// the question here is the bill, not feasibility, and a tight
		// guard would veto recoveries and muddy the success comparison.
		BudgetFactor: 6,
		Discounts:    []float64{0.5, 0.7},
		Rates:        []float64{0.1, 2, 6, 20, 60},
	}
	res, err := exp.RunSpotSweep(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Montage-20 on a two-provider market, HEFT planning, budget guard at $%.4f\n", res.Budget)
	fmt.Printf("%d instances × %d revocation-injected executions per market condition\n\n", sc.Instances, sc.Reps)
	fmt.Printf("baseline (heft, on-demand only): mean cost $%.5f, mean makespan %.0fs, success 100%%\n\n",
		res.BaselineCost.Mean, res.BaselineMakespan.Mean)

	fmt.Println("discount  revocations/h  success  meanCost   meanMakespan   saving   spotVMs  revocs  rework$")
	for _, p := range res.Points {
		fmt.Printf("   %3.0f%%   %12.1f   %5.1f%%  $%.5f         %5.0fs  %+6.1f%%     %4.2f   %5.2f  %.5f\n",
			100*p.Discount, p.Rate, 100*p.SuccessRate,
			p.Cost.Mean, p.Makespan.Mean, 100*p.CostSaving, p.SpotVMs, p.Revocations, p.ReworkCost)
	}
	fmt.Println()
	fmt.Println("Reading the frontier: the spot twins run at on-demand speed, so success")
	fmt.Println("stays at the baseline's 100% everywhere — the market only moves the bill.")
	fmt.Println("At calm hazards the saving approaches the discount (sink VMs stay on")
	fmt.Println("demand, so it lands below the headline rate); past tens of revocations")
	fmt.Println("per hour the billed-but-wasted uptime and the on-demand resubmissions")
	fmt.Println("cost more than the discount saves, and on-demand wins again.")
}
