// Multi-tenant shared pool vs private pools: the economic argument
// for the tentpole service. Three tenants stream Poisson-arriving
// workflows at one scheduler. In the shared configuration an idle VM
// whose billing quantum is already paid is leased to whichever tenant
// arrives next, and only deprovisioned when the next billing boundary
// is closer than the time-to-shutdown threshold. The baseline sets
// time-to-shutdown to a full quantum, which releases every VM the
// moment its workflow settles — each workflow then provisions its own
// private pool, exactly like running internal/online once per
// submission.
//
// Both runs execute the identical submission trace (same seed, same
// workflows, same arrival times), so the difference in total billed
// cost is attributable to reuse alone: leased VMs skip the
// provisioning fee and boot delay, and tail ends of already-paid
// quanta do work instead of expiring idle.
//
// Run with: go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"budgetwf/internal/online"
	"budgetwf/internal/platform"
	"budgetwf/internal/pool"
)

func main() {
	spec := pool.TraceSpec{
		Seed: 42,
		Tenants: []pool.TenantTraffic{
			{Tenant: pool.TenantSpec{ID: "astro"}, Rate: 2, Count: 6,
				WorkflowType: "montage", Tasks: 20, Budget: 5, Algorithm: "heftbudg"},
			{Tenant: pool.TenantSpec{ID: "seismo"}, Rate: 3, Count: 6,
				WorkflowType: "cybershake", Tasks: 16, Budget: 5, Algorithm: "heftbudg"},
			{Tenant: pool.TenantSpec{ID: "batch"}, Rate: 1, Count: 4,
				WorkflowType: "chain", Tasks: 8, Algorithm: "heft"},
		},
	}

	quantum := 3600.0
	run := func(label string, tts float64) *pool.TraceResult {
		plat := platform.Default()
		plat.BillingQuantum = quantum
		res, err := pool.RunTrace(pool.Config{
			Platform:       plat,
			TimeToShutdown: tts,
			Policy:         online.DefaultPolicy(0),
			Seed:           7,
		}, spec, nil)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		return res
	}

	// Private baseline: tts = quantum means "remaining paid time <=
	// time-to-shutdown" holds the instant a VM goes idle, so nothing is
	// ever kept for the next arrival.
	private := run("private", quantum)
	// Shared pool: keep idle VMs until 10% of the quantum remains.
	shared := run("shared", 0.1*quantum)

	fmt.Println("Identical 16-workflow trace, 3 tenants, billing quantum 3600s:")
	fmt.Println()
	row := func(label string, s pool.Stats) {
		fmt.Printf("  %-22s provisioned=%3d reused=%3d billed=%8.4f savedInit=%.4f idleWaste=%.0fs\n",
			label, s.Provisioned, s.Reused, s.BilledTotal, s.SavedInitCost, s.IdleWasteSeconds)
	}
	row("private pools", private.Stats)
	row("shared pool (tts=360)", shared.Stats)
	fmt.Println()

	fmt.Println("Per-tenant bills:")
	fmt.Printf("  %-8s %12s %12s %10s %10s\n", "tenant", "private", "shared", "reusedVMs", "savedInit")
	for i, tv := range shared.Tenants {
		fmt.Printf("  %-8s %12.4f %12.4f %10d %10.4f\n",
			tv.ID, private.Tenants[i].Billed, tv.Billed, tv.ReusedVMs, tv.SavedInitCost)
	}
	fmt.Println()

	saving := private.Stats.BilledTotal - shared.Stats.BilledTotal
	fmt.Printf("Shared pool bills %.4f less in total (%.1f%% of the private bill):\n",
		saving, 100*saving/private.Stats.BilledTotal)
	fmt.Printf("  %d of %d VM acquisitions were leases of already-paid VMs,\n",
		shared.Stats.Reused, shared.Stats.Reused+shared.Stats.Provisioned)
	fmt.Printf("  each skipping the provisioning fee and the boot delay.\n")
	if shared.Stats.BilledTotal >= private.Stats.BilledTotal {
		log.Fatal("expected the shared pool to be cheaper")
	}
}
