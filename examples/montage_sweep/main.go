// Montage sweep: a Figure-1-style budget sweep on a MONTAGE instance,
// comparing the budget-blind baselines with the budget-aware variants.
// Demonstrates the experiment harness through the public API.
//
// Run with: go run ./examples/montage_sweep [-n 90]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"budgetwf"
)

func main() {
	n := flag.Int("n", 60, "workflow size (tasks)")
	flag.Parse()

	cfg := budgetwf.FigureConfig{
		N:          *n,
		SigmaRatio: 0.5,
		Instances:  3,
		Reps:       10,
		GridK:      6,
	}
	tables, err := budgetwf.Figure1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Figure1 returns one table per family (CyberShake, LIGO,
	// Montage); print the Montage one.
	montage := tables[2]
	if err := montage.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Columns mirror the paper's Figure 1: makespan (first panel),")
	fmt.Println("cost (second panel) and number of VMs (third panel), one row")
	fmt.Println("per (algorithm, budget). The min_cost row is the green dot.")
}
