// Quickstart: build a small workflow by hand, plan it with HEFTBUDG
// under a budget, and measure the realized makespan and cost over
// repeated stochastic executions.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"budgetwf"
)

func main() {
	// A toy genomics-style pipeline: split → 4 parallel aligners →
	// merge → report. Weights are instruction counts (a 1e9-speed VM
	// runs 1e9 instructions per second); σ models input-dependent
	// variation. Data sizes are in bytes.
	w := budgetwf.NewWorkflow("toy-pipeline")
	split := w.AddTask("split", budgetwf.Dist{Mean: 30e9, Sigma: 6e9})
	if err := w.SetExternalIO(split, 2e9, 0); err != nil { // 2 GB of reads
		log.Fatal(err)
	}
	merge := w.AddTask("merge", budgetwf.Dist{Mean: 40e9, Sigma: 8e9})
	for i := 0; i < 4; i++ {
		align := w.AddTask(fmt.Sprintf("align_%d", i), budgetwf.Dist{Mean: 120e9, Sigma: 40e9})
		w.MustAddEdge(split, align, 500e6)
		w.MustAddEdge(align, merge, 200e6)
	}
	report := w.AddTask("report", budgetwf.Dist{Mean: 10e9, Sigma: 1e9})
	w.MustAddEdge(merge, report, 50e6)
	if err := w.SetExternalIO(report, 0, 100e6); err != nil {
		log.Fatal(err)
	}

	p := budgetwf.DefaultPlatform()

	// Budget landmarks: what the cheapest possible execution costs,
	// and what the budget-blind HEFT schedule costs.
	anchors, err := budgetwf.ComputeAnchors(w, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cheapest execution: $%.4f (makespan %.0f s)\n", anchors.CheapCost, anchors.CheapMakespan)
	fmt.Printf("HEFT, no budget:    $%.4f (makespan %.0f s)\n\n", anchors.BaselineCost, anchors.BaselineMakespan)

	for _, factor := range []float64{1.0, 1.2, 1.5, 2.0} {
		budget := factor * anchors.CheapCost
		s, err := budgetwf.HeftBudg(w, p, budget)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := budgetwf.ReplicateBudget(w, p, s, 25, 42, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget $%.4f (%.1f× min): makespan %7.1f ± %5.1f s, cost $%.4f, %d VMs, %3.0f%% within budget\n",
			budget, factor, rep.Makespan.Mean, rep.Makespan.StdDev, rep.Cost.Mean, s.NumVMs(), 100*rep.ValidFrac)
	}
}
