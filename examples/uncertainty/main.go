// Uncertainty study: how the amount of stochasticity in task weights
// affects the budget needed to reach a target makespan (the extended
// version's σ-sensitivity experiment discussed in §V-B).
//
// For each σ/w̄ ratio the program sweeps budgets until HEFTBUDG's mean
// realized makespan comes within 5% of the budget-blind HEFT baseline,
// and reports that "budget-to-baseline" together with the validity
// percentage at that point.
//
// Run with: go run ./examples/uncertainty
package main

import (
	"fmt"
	"log"

	"budgetwf"
)

func main() {
	p := budgetwf.DefaultPlatform()
	base, err := budgetwf.Generate(budgetwf.Montage, 60, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("σ/w̄    budget-to-baseline  (× cheapest)   makespan [s]    valid")
	fmt.Println("-----  ------------------  -----------   -------------   -----")
	for _, sigma := range []float64{0.0, 0.25, 0.50, 0.75, 1.00} {
		w := base.WithSigmaRatio(sigma)
		anchors, err := budgetwf.ComputeAnchors(w, p)
		if err != nil {
			log.Fatal(err)
		}
		target := anchors.BaselineMakespan * 1.05

		// Walk the budget up in 2% steps of the cheapest cost until
		// the realized makespan reaches the target.
		found := false
		for factor := 1.0; factor < 12; factor *= 1.02 {
			budget := factor * anchors.CheapCost
			s, err := budgetwf.HeftBudg(w, p, budget)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := budgetwf.ReplicateBudget(w, p, s, 15, 7, budget)
			if err != nil {
				log.Fatal(err)
			}
			if rep.Makespan.Mean <= target {
				fmt.Printf("%.2f   $%.4f            %.3f         %7.1f ± %4.1f   %3.0f%%\n",
					sigma, budget, factor, rep.Makespan.Mean, rep.Makespan.StdDev, 100*rep.ValidFrac)
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%.2f   baseline not reached within 12× the cheapest budget\n", sigma)
		}
	}
	fmt.Println("\nA larger σ inflates the conservative weights (w̄+σ) the planner")
	fmt.Println("budgets for, so reaching the baseline makespan needs more money —")
	fmt.Println("yet the budget keeps being respected (the paper's §V-B finding).")
}
