package budgetwf

import (
	"budgetwf/internal/online"
	"budgetwf/internal/rng"
	"budgetwf/internal/sim"
	"budgetwf/internal/stoch"
)

// Objective is the paper's bi-criteria goal (Equation (3)): meet the
// deadline D while respecting the budget B. Zero fields disable a
// criterion.
type Objective = sim.Objective

// ObjectiveStats aggregates Objective satisfaction over repeated
// executions.
type ObjectiveStats = sim.ObjectiveStats

// ReplicateObjective runs n stochastic executions of the schedule and
// reports how often each criterion of the objective held.
func ReplicateObjective(w *Workflow, p *Platform, s *Schedule, n int, seed uint64, obj Objective) (*ObjectiveStats, error) {
	stream := rng.New(seed)
	var stats ObjectiveStats
	runner, err := sim.NewRunner(w, p, s)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		r, err := runner.RunStochastic(stream.Split(uint64(i)))
		if err != nil {
			return nil, err
		}
		stats.Observe(obj, r)
	}
	return &stats, nil
}

// OnlinePolicy configures the online re-scheduling controller — the
// paper's §VI future-work direction, implemented as an extension:
// monitor every computation, interrupt tasks whose duration exceeds
// the (w̄ + k·σ)/s timeout, and restart them on a fresh
// fastest-category VM when the budget guard allows it.
type OnlinePolicy = online.Policy

// OnlineReport is the outcome of one monitored execution, including
// the migrations performed and the timeouts vetoed by the budget
// guard.
type OnlineReport = online.Report

// Migration records one online re-scheduling intervention.
type Migration = online.Migration

// DefaultOnlinePolicy returns 2σ timeouts with one migration per task,
// guarded by the given budget.
func DefaultOnlinePolicy(budget float64) OnlinePolicy {
	return online.DefaultPolicy(budget)
}

// Outliers is the heavy-tail weight model used to evaluate online
// re-scheduling: with probability Prob a realized weight is multiplied
// by Factor, representing the un-modeled "very long durations" (§VI)
// that thin Gaussian tails cannot produce.
type Outliers = stoch.Outliers

// ExecuteOnline runs one monitored execution of the schedule with task
// weights sampled from their distributions.
func ExecuteOnline(w *Workflow, p *Platform, s *Schedule, seed uint64, policy OnlinePolicy) (*OnlineReport, error) {
	return online.ExecuteStochastic(w, p, s, rng.New(seed), policy)
}

// ExecuteOnlineOutliers runs one monitored execution under the
// heavy-tail outlier model, alongside the plain simulator result for
// the same realized weights (the static/online comparison every
// evaluation of the extension needs).
func ExecuteOnlineOutliers(w *Workflow, p *Platform, s *Schedule, seed uint64, o Outliers, policy OnlinePolicy) (static *SimResult, monitored *OnlineReport, err error) {
	weights := sim.SampleWeightsOutliers(w, rng.New(seed), o)
	static, err = sim.Run(w, p, s, weights)
	if err != nil {
		return nil, nil, err
	}
	monitored, err = online.Execute(w, p, s, weights, policy)
	if err != nil {
		return nil, nil, err
	}
	return static, monitored, nil
}
