package budgetwf_test

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"budgetwf"
)

const testDAX = `<adag name="pair">
  <job id="a" name="first" runtime="50">
    <uses file="in" link="input" size="1000000"/>
    <uses file="mid" link="output" size="500000"/>
  </job>
  <job id="b" name="second" runtime="30">
    <uses file="mid" link="input" size="500000"/>
    <uses file="out" link="output" size="100000"/>
  </job>
  <child ref="b"><parent ref="a"/></child>
</adag>`

func TestLoadDAXThroughFacade(t *testing.T) {
	path := t.TempDir() + "/w.dax"
	if err := os.WriteFile(path, []byte(testDAX), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := budgetwf.LoadDAX(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() != 2 || w.NumEdges() != 1 {
		t.Errorf("%d tasks, %d edges", w.NumTasks(), w.NumEdges())
	}
	// LoadWorkflow dispatches on the extension.
	w2, err := budgetwf.LoadWorkflow(path)
	if err != nil {
		t.Fatal(err)
	}
	if w2.NumTasks() != 2 {
		t.Error("LoadWorkflow did not dispatch to DAX")
	}
}

func TestExtendedFamiliesThroughFacade(t *testing.T) {
	for _, typ := range []budgetwf.WorkflowType{budgetwf.Epigenomics, budgetwf.Sipht} {
		w, err := budgetwf.Generate(typ, 30, 0)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		w = w.WithSigmaRatio(0.5)
		s, err := budgetwf.HeftBudg(w, budgetwf.DefaultPlatform(), 10)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if _, err := budgetwf.Simulate(w, budgetwf.DefaultPlatform(), s, 1); err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
	}
}

func TestReplicateObjective(t *testing.T) {
	w, err := budgetwf.Generate(budgetwf.Montage, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithSigmaRatio(0.25)
	p := budgetwf.DefaultPlatform()
	s, err := budgetwf.Heft(w, p)
	if err != nil {
		t.Fatal(err)
	}
	// Unmeetable deadline, generous budget.
	stats, err := budgetwf.ReplicateObjective(w, p, s, 8, 3, budgetwf.Objective{Deadline: 1, Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 8 || stats.DeadlineMet != 0 || stats.BudgetMet != 8 || stats.BothMet != 0 {
		t.Errorf("objective stats %+v", stats)
	}
}

func TestExecuteOnlineThroughFacade(t *testing.T) {
	w, err := budgetwf.Generate(budgetwf.Montage, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()
	s, err := budgetwf.HeftBudg(w, p, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := budgetwf.ExecuteOnline(w, p, s, 1, budgetwf.DefaultOnlinePolicy(0.03))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 || rep.TotalCost <= 0 {
		t.Error("degenerate online report")
	}
	static, monitored, err := budgetwf.ExecuteOnlineOutliers(w, p, s, 2,
		budgetwf.Outliers{Prob: 0.3, Factor: 10}, budgetwf.OnlinePolicy{TimeoutSigma: 2, MaxMigrations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if static.Makespan <= 0 || monitored.Makespan <= 0 {
		t.Error("degenerate outlier comparison")
	}
}

func TestGanttThroughFacadeResult(t *testing.T) {
	w, err := budgetwf.Generate(budgetwf.ForkJoin, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithSigmaRatio(0.25)
	p := budgetwf.DefaultPlatform()
	s, err := budgetwf.Heft(w, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := budgetwf.Simulate(w, p, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteGantt(&b, w, s, 50); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Gantt:") {
		t.Error("facade gantt rendering failed")
	}
	if u := res.FleetUtilization(); u <= 0 || u > 1 {
		t.Errorf("fleet utilization %v out of (0,1]", u)
	}
}

func TestPlannerOptionsThroughFacade(t *testing.T) {
	w, err := budgetwf.Generate(budgetwf.Montage, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()
	base, err := budgetwf.HeftBudgWithOptions(w, p, 0.03, budgetwf.PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := budgetwf.HeftBudgWithOptions(w, p, 0.03, budgetwf.PlannerOptions{Insertion: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.NumVMs() == 0 || ins.NumVMs() == 0 {
		t.Error("degenerate schedules")
	}
	if _, err := budgetwf.MinMinBudgWithOptions(w, p, 0.03, budgetwf.PlannerOptions{DisablePot: true}); err != nil {
		t.Fatal(err)
	}
}

func TestPeftThroughFacade(t *testing.T) {
	w, err := budgetwf.Generate(budgetwf.Montage, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()
	s, err := budgetwf.Peft(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := budgetwf.Simulate(w, p, s, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(budgetwf.AlgorithmsExtended()); got != 10 {
		t.Errorf("%d extended algorithms, want 10", got)
	}
	if _, err := budgetwf.ScheduleWith(budgetwf.AlgPeft, w, p, 0); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleWithUnknownAlgorithm(t *testing.T) {
	w, err := budgetwf.Generate(budgetwf.Montage, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	s, err := budgetwf.ScheduleWith("simulated-annealing-9000", w, budgetwf.DefaultPlatform(), 10)
	if err == nil {
		t.Fatal("ScheduleWith accepted an unknown algorithm")
	}
	if s != nil {
		t.Error("unknown algorithm returned a schedule alongside the error")
	}
	if !strings.Contains(err.Error(), "simulated-annealing-9000") {
		t.Errorf("error %q does not name the offending algorithm", err)
	}
}

func TestAlgorithmsAndScheduleWithAgree(t *testing.T) {
	w, err := budgetwf.Generate(budgetwf.Montage, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()

	// Every name either listing advertises must be schedulable: the
	// registry the daemon serves from GET /v1/algorithms and the one
	// ScheduleWith dispatches on are the same set.
	core := budgetwf.Algorithms()
	extended := budgetwf.AlgorithmsExtended()
	if len(core) != 9 {
		t.Errorf("Algorithms() lists %d names, want the paper's 9", len(core))
	}
	inExtended := map[budgetwf.AlgorithmName]bool{}
	for _, name := range extended {
		inExtended[name] = true
	}
	for _, name := range core {
		if !inExtended[name] {
			t.Errorf("core algorithm %q missing from AlgorithmsExtended()", name)
		}
	}
	for _, name := range extended {
		s, err := budgetwf.ScheduleWith(name, w, p, 1e6)
		if err != nil {
			t.Errorf("ScheduleWith(%q) rejected an advertised algorithm: %v", name, err)
			continue
		}
		if s.NumVMs() < 1 {
			t.Errorf("ScheduleWith(%q) produced an empty schedule", name)
		}
	}
}

func TestScheduleWithContextCancellation(t *testing.T) {
	w, err := budgetwf.Generate(budgetwf.Montage, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every planner must bail out
	for _, name := range budgetwf.AlgorithmsExtended() {
		if _, err := budgetwf.ScheduleWithContext(ctx, name, w, p, 1e6); !errors.Is(err, context.Canceled) {
			t.Errorf("ScheduleWithContext(%q) under cancelled context: err = %v, want context.Canceled", name, err)
		}
	}

	// An un-cancelled context schedules normally.
	if _, err := budgetwf.ScheduleWithContext(context.Background(), "heftbudg", w, p, 1e6); err != nil {
		t.Errorf("ScheduleWithContext with live context failed: %v", err)
	}
}
