// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V). Each BenchmarkFigure*/BenchmarkTable* target runs
// the same harness code as cmd/paperfigs, at a reduced scale suitable
// for testing.B iteration counts; run cmd/paperfigs (without -quick)
// for the full-scale reproduction recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package budgetwf_test

import (
	"fmt"
	"testing"

	"budgetwf"
)

// benchCfg is the reduced scale shared by the figure benchmarks.
func benchCfg() budgetwf.FigureConfig {
	return budgetwf.FigureConfig{N: 30, SigmaRatio: 0.5, Instances: 1, Reps: 3, GridK: 4, Workers: 2}
}

// BenchmarkFigure1 regenerates Figure 1 (MIN-MIN, HEFT, MIN-MINBUDG,
// HEFTBUDG over the budget grid, all three workflow families).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := budgetwf.Figure1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (HEFTBUDG+ and HEFTBUDG+INV
// against HEFT and HEFTBUDG).
func BenchmarkFigure2(b *testing.B) {
	cfg := benchCfg()
	cfg.GridK = 2 // the refined variants are ~100× costlier to plan
	for i := 0; i < b.N; i++ {
		if _, err := budgetwf.Figure2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3 (budget-aware variants vs the
// extended BDT and CG competitors, including validity percentages).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := budgetwf.Figure3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (refined variants vs CG+).
func BenchmarkFigure4(b *testing.B) {
	cfg := benchCfg()
	cfg.GridK = 2
	for i := 0; i < b.N; i++ {
		if _, err := budgetwf.Figure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3a is Table III(a): time to compute one schedule for a
// 90-task MONTAGE workflow, per algorithm, at a medium budget. The
// per-op time IS the table cell.
func BenchmarkTable3a(b *testing.B) {
	w, err := budgetwf.Generate(budgetwf.Montage, 90, 0)
	if err != nil {
		b.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()
	anchors, err := budgetwf.ComputeAnchors(w, p)
	if err != nil {
		b.Fatal(err)
	}
	budget := (anchors.CheapCost + anchors.High) / 2
	for _, name := range budgetwf.Algorithms() {
		b.Run(string(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := budgetwf.ScheduleWith(name, w, p, budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3b is Table III(b): scheduling time versus workflow
// size (30/60/90/400 tasks) at a high budget. The refined variants and
// CG+ are benchmarked only up to 90 tasks, matching the paper's remark
// that their cost "limits their usage to smaller-size workflows".
func BenchmarkTable3b(b *testing.B) {
	p := budgetwf.DefaultPlatform()
	for _, n := range []int{30, 60, 90, 400} {
		w, err := budgetwf.Generate(budgetwf.Montage, n, 0)
		if err != nil {
			b.Fatal(err)
		}
		w = w.WithSigmaRatio(0.5)
		anchors, err := budgetwf.ComputeAnchors(w, p)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range budgetwf.Algorithms() {
			expensive := name == budgetwf.AlgHeftBudgPlus || name == budgetwf.AlgHeftBudgPlusInv || name == budgetwf.AlgCGPlus
			if expensive && n > 90 {
				continue
			}
			b.Run(fmt.Sprintf("%s/n%d", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := budgetwf.ScheduleWith(name, w, p, anchors.High); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSigmaSweep regenerates the extended-version σ-sensitivity
// data (budget sweeps at four uncertainty levels).
func BenchmarkSigmaSweep(b *testing.B) {
	cfg := benchCfg()
	cfg.GridK = 3
	for i := 0; i < b.N; i++ {
		if _, err := budgetwf.SigmaSweep(cfg, budgetwf.Montage, budgetwf.AlgHeftBudg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentionAblation regenerates the §V-B LIGO anomaly study
// (unbounded datacenter vs a finite aggregate bandwidth).
func BenchmarkContentionAblation(b *testing.B) {
	cfg := benchCfg()
	cfg.GridK = 3
	for i := 0; i < b.N; i++ {
		if _, err := budgetwf.ContentionAblation(cfg, 250e6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures one stochastic discrete-event execution
// of a planned 90-task MONTAGE schedule — the inner loop of every
// experiment (16 500 executions per workflow type in the paper).
func BenchmarkSimulate(b *testing.B) {
	w, err := budgetwf.Generate(budgetwf.Montage, 90, 0)
	if err != nil {
		b.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()
	s, err := budgetwf.Heft(w, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := budgetwf.Simulate(w, p, s, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateContention is BenchmarkSimulate under the fluid
// max-min fair-sharing engine (finite datacenter bandwidth) — the
// ablation's extra cost.
func BenchmarkSimulateContention(b *testing.B) {
	w, err := budgetwf.Generate(budgetwf.Ligo, 90, 0)
	if err != nil {
		b.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()
	p.DCBandwidth = 250e6
	s, err := budgetwf.Heft(w, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := budgetwf.Simulate(w, p, s, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures workflow generation, the setup cost of
// every experiment cell.
func BenchmarkGenerate(b *testing.B) {
	for _, typ := range budgetwf.PaperWorkflowTypes() {
		b.Run(string(typ), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := budgetwf.Generate(typ, 90, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInsertionPolicy compares the append placement (the paper's)
// with the original HEFT insertion policy — the cost of gap search.
func BenchmarkInsertionPolicy(b *testing.B) {
	w, err := budgetwf.Generate(budgetwf.Montage, 90, 0)
	if err != nil {
		b.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()
	for _, mode := range []struct {
		name string
		opt  budgetwf.PlannerOptions
	}{
		{"append", budgetwf.PlannerOptions{}},
		{"insertion", budgetwf.PlannerOptions{Insertion: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := budgetwf.HeftBudgWithOptions(w, p, 0.1, mode.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineExecution measures the monitored executor against the
// plain simulator on the same realized weights.
func BenchmarkOnlineExecution(b *testing.B) {
	w, err := budgetwf.Generate(budgetwf.Montage, 90, 0)
	if err != nil {
		b.Fatal(err)
	}
	w = w.WithSigmaRatio(0.5)
	p := budgetwf.DefaultPlatform()
	s, err := budgetwf.HeftBudg(w, p, 0.07)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := budgetwf.Simulate(w, p, s, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("monitored", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := budgetwf.ExecuteOnline(w, p, s, uint64(i), budgetwf.DefaultOnlinePolicy(0.07)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
