package main

import (
	"fmt"
	"io"
	"time"

	"budgetwf/internal/dist/chaostest"
)

// runChaos is the -chaos mode: a thin CLI front end over
// internal/dist/chaostest. It boots a real multi-process cluster,
// SIGKILLs a worker and kill-restarts the coordinator mid-sweep, and
// reports whether the survivable-crash contract held. size 0 means
// the harness default sweep sizing.
func runChaos(stdout io.Writer, workers, size int, seed int64, timeout time.Duration) error {
	fmt.Fprintf(stdout, "loadgen -chaos: building budgetwfd and booting %d workers + journal-backed coordinator\n", workers)
	rep, err := chaostest.Run(chaostest.Scenario{
		Workers: workers,
		Sweep:   chaostest.DefaultSweep(size),
		Seed:    seed,
		Timeout: timeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, "  "+format+"\n", args...)
		},
	})
	if err != nil {
		if rep != nil && rep.Dir != "" {
			fmt.Fprintf(stdout, "  scratch dir preserved for post-mortem: %s\n", rep.Dir)
		}
		return err
	}
	fmt.Fprintf(stdout, "loadgen -chaos: PASS\n")
	fmt.Fprintf(stdout, "  job %s: %d units merged in %v\n", rep.JobID, rep.UnitsTotal, rep.Elapsed)
	fmt.Fprintf(stdout, "  killed worker%d (SIGKILL), coordinator kill-restarted mid-run\n", rep.KilledWorker)
	fmt.Fprintf(stdout, "  polls: %d, reconnects across the outage: %d\n", rep.Polls, rep.Reconnects)
	fmt.Fprintf(stdout, "  merged result byte-identical to undisturbed run (%d bytes)\n", rep.ResultBytes)
	fmt.Fprintf(stdout, "  journal: snapshot %dB + %d tail records\n", rep.SnapshotBytes, rep.TailRecords)
	fmt.Fprintf(stdout, "  dispatch: %d shards, %d requeued, %d stolen, %d duplicates dropped\n",
		rep.Dispatched, rep.Requeued, rep.Stolen, rep.Duplicates)
	fmt.Fprintf(stdout, "  trace: %d spans stitched across coordinator + %d worker processes\n",
		rep.TraceSpans, rep.TraceWorkerPids)
	return nil
}
