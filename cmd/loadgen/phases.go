package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"budgetwf/internal/obs"
)

// Per-phase latency from a stitched job trace (-jobs mode): the
// coordinator's GET /v1/traces/{traceId} returns the job's span tree
// with each worker's compute subtree grafted under its dispatch span,
// so the dispatch overhead (queueing, HTTP, retries) separates cleanly
// from the worker-side compute time, and the root's tail past the last
// shard is the merge.

// jobPhases is the breakdown parsed from one stitched job trace.
type jobPhases struct {
	shards      int           // stitched shard spans contributing
	dispatchP50 time.Duration // median shard overhead beyond worker compute
	computeP50  time.Duration // median worker compute duration
	merge       time.Duration // root tail after the last shard finished
}

// extractPhases walks the job trace: every "shard" child of the root
// with a grafted "compute" subtree contributes one dispatch/compute
// sample; shards that ran locally (no remote subtree) are skipped.
func extractPhases(tr *obs.TraceJSON) (jobPhases, error) {
	if tr == nil || tr.Root == nil {
		return jobPhases{}, fmt.Errorf("empty trace")
	}
	us := func(v float64) time.Duration { return time.Duration(v * float64(time.Microsecond)) }
	var disp, comp []time.Duration
	lastEndUs := 0.0
	for _, c := range tr.Root.Children {
		if c.Name != "shard" {
			continue
		}
		if end := c.StartUs + c.DurUs; end > lastEndUs {
			lastEndUs = end
		}
		computeUs := 0.0
		for _, cc := range c.Children {
			if cc.Name == "compute" {
				computeUs += cc.DurUs
			}
		}
		if computeUs <= 0 || computeUs > c.DurUs {
			continue
		}
		comp = append(comp, us(computeUs))
		disp = append(disp, us(c.DurUs-computeUs))
	}
	if len(comp) == 0 {
		return jobPhases{}, fmt.Errorf("no stitched shard spans in trace %q", tr.ID)
	}
	sort.Slice(disp, func(i, j int) bool { return disp[i] < disp[j] })
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	merge := us(tr.Root.DurUs - lastEndUs)
	if merge < 0 {
		merge = 0
	}
	return jobPhases{
		shards:      len(comp),
		dispatchP50: percentile(disp, 0.50),
		computeP50:  percentile(comp, 0.50),
		merge:       merge,
	}, nil
}

// reportJobPhases fetches one sampled job's stitched trace and prints
// the per-phase breakdown. A missing or unstitched trace (the ring
// evicted it, or the job ran without remote workers) is reported as a
// note, never as an error — the phases are a bonus, not the result.
func reportJobPhases(stdout io.Writer, client *http.Client, baseURL, traceID string) {
	resp, err := client.Get(baseURL + "/v1/traces/" + traceID)
	if err != nil {
		fmt.Fprintf(stdout, "  phases: trace %s unavailable (%v)\n", traceID, err)
		return
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stdout, "  phases: trace %s unavailable (status %d)\n", traceID, resp.StatusCode)
		return
	}
	var tr obs.TraceJSON
	if err := json.Unmarshal(raw, &tr); err != nil {
		fmt.Fprintf(stdout, "  phases: trace %s unreadable (%v)\n", traceID, err)
		return
	}
	ph, err := extractPhases(&tr)
	if err != nil {
		fmt.Fprintf(stdout, "  phases: %v (job ran without remote workers?)\n", err)
		return
	}
	fmt.Fprintf(stdout, "  phases (trace %s, %d stitched shards): dispatch p50=%v compute p50=%v merge=%v\n",
		traceID, ph.shards, ph.dispatchP50, ph.computeP50, ph.merge)
}
