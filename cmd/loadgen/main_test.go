package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryDelay(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	cap := 2 * time.Second
	for attempt := 0; attempt < 8; attempt++ {
		for _, hdr := range []string{"", "0", "1", "30", "soon", "-2",
			now.Add(3 * time.Second).UTC().Format(http.TimeFormat)} {
			d := retryDelay(hdr, attempt, cap, rnd, now)
			if d < 0 || d > cap {
				t.Fatalf("retryDelay(%q, %d) = %v, outside [0, %v]", hdr, attempt, d, cap)
			}
		}
	}

	// RFC 9110 allows delta-seconds (including 0) and HTTP-dates; both
	// must be honored, bounded by [0, cap], with the default base only
	// for absent/invalid values.
	httpDate := func(d time.Duration) string { return now.Add(d).UTC().Format(http.TimeFormat) }
	for _, tc := range []struct {
		name     string
		header   string
		attempt  int
		cap      time.Duration
		min, max time.Duration
	}{
		{"absent falls back to default base", "", 0, time.Minute, 75 * time.Millisecond, 100 * time.Millisecond},
		{"unparseable falls back to default base", "soon", 0, time.Minute, 75 * time.Millisecond, 100 * time.Millisecond},
		{"negative falls back to default base", "-2", 0, time.Minute, 75 * time.Millisecond, 100 * time.Millisecond},
		{"delta-seconds raises the base", "1", 0, time.Minute, 750 * time.Millisecond, time.Second},
		{"zero delta-seconds means retry now", "0", 0, time.Minute, 0, 0},
		{"zero delta-seconds stays zero on later attempts", "0", 3, time.Minute, 0, 0},
		{"delta-seconds clamps to cap", "30", 0, 2 * time.Second, 1500 * time.Millisecond, 2 * time.Second},
		{"HTTP-date is honored", httpDate(4 * time.Second), 0, time.Minute, 3 * time.Second, 4 * time.Second},
		{"HTTP-date in the past means retry now", httpDate(-10 * time.Second), 0, time.Minute, 0, 0},
		{"HTTP-date clamps to cap", httpDate(time.Hour), 0, 2 * time.Second, 1500 * time.Millisecond, 2 * time.Second},
		{"doubling respects cap", "1", 6, 2 * time.Second, 1500 * time.Millisecond, 2 * time.Second},
	} {
		d := retryDelay(tc.header, tc.attempt, tc.cap, rnd, now)
		if d < tc.min || d > tc.max {
			t.Errorf("%s: retryDelay(%q, attempt %d) = %v, want in [%v, %v]",
				tc.name, tc.header, tc.attempt, d, tc.min, tc.max)
		}
	}
}

// TestRunRetriesOn429 drives run() against a server that rejects every
// other request with a 429 + Retry-After: each rejection must be
// retried and reported, and every request must end in a 200.
func TestRunRetriesOn429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "0") // retry immediately; keeps the test fast
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"server overloaded, retry later"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"cached":false}`))
	}))
	defer srv.Close()

	var out strings.Builder
	err := run([]string{"-url", srv.URL, "-n", "4", "-c", "1", "-distinct", "1",
		"-size", "15", "-retries", "2", "-retry-cap", "200ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"status 200: 4", "429 retries: 4 across 4 requests"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunReportsExhaustedRetries: when the server never relents, the
// final status is the 429 itself.
func TestRunReportsExhaustedRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	var out strings.Builder
	err := run([]string{"-url", srv.URL, "-n", "2", "-c", "2", "-distinct", "1",
		"-size", "15", "-retries", "1", "-retry-cap", "50ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"status 429: 2", "429 retries: 2 across 2 requests"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestPercentile pins the interpolating percentile estimator against
// hand-computed values.
func TestPercentile(t *testing.T) {
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	four := []time.Duration{ms(10), ms(20), ms(30), ms(40)}
	cases := []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   time.Duration
	}{
		{"empty", nil, 0.5, 0},
		{"single", []time.Duration{ms(7)}, 0.99, ms(7)},
		{"min", four, 0, ms(10)},
		{"max", four, 1, ms(40)},
		{"clamp-low", four, -0.5, ms(10)},
		{"clamp-high", four, 1.5, ms(40)},
		// rank 0.5*(4-1)=1.5 → halfway between 20 and 30.
		{"median-interpolated", four, 0.5, ms(25)},
		// rank 0.9*3=2.7 → 30 + 0.7*(40-30).
		{"p90", four, 0.9, ms(37)},
		// odd length: rank 0.5*2=1 lands exactly on an element.
		{"median-exact", []time.Duration{ms(1), ms(2), ms(100)}, 0.5, ms(2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := percentile(tc.sorted, tc.p)
			if diff := got - tc.want; diff < -time.Microsecond || diff > time.Microsecond {
				t.Errorf("percentile(%v, %g) = %v, want %v", tc.sorted, tc.p, got, tc.want)
			}
		})
	}
}
