package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryDelay(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	cap := 2 * time.Second
	for attempt := 0; attempt < 8; attempt++ {
		for _, hdr := range []string{"", "1", "30", "soon", "-2"} {
			d := retryDelay(hdr, attempt, cap, rnd)
			if d < 0 || d > cap {
				t.Fatalf("retryDelay(%q, %d) = %v, outside [0, %v]", hdr, attempt, d, cap)
			}
		}
	}
	// The Retry-After hint raises the base above the default.
	if d := retryDelay("1", 0, time.Minute, rnd); d < 750*time.Millisecond {
		t.Errorf("Retry-After: 1 yielded only %v", d)
	}
	// Without a hint the first backoff stays around the 100ms base.
	if d := retryDelay("", 0, time.Minute, rnd); d > 100*time.Millisecond {
		t.Errorf("default base backoff too large: %v", d)
	}
}

// TestRunRetriesOn429 drives run() against a server that rejects every
// other request with a 429 + Retry-After: each rejection must be
// retried and reported, and every request must end in a 200.
func TestRunRetriesOn429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "0") // keep the test fast; base backoff applies
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"server overloaded, retry later"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"cached":false}`))
	}))
	defer srv.Close()

	var out strings.Builder
	err := run([]string{"-url", srv.URL, "-n", "4", "-c", "1", "-distinct", "1",
		"-size", "15", "-retries", "2", "-retry-cap", "200ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"status 200: 4", "429 retries: 4 across 4 requests"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunReportsExhaustedRetries: when the server never relents, the
// final status is the 429 itself.
func TestRunReportsExhaustedRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	var out strings.Builder
	err := run([]string{"-url", srv.URL, "-n", "2", "-c", "2", "-distinct", "1",
		"-size", "15", "-retries", "1", "-retry-cap", "50ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"status 429: 2", "429 retries: 2 across 2 requests"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
