package main

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestParseSpotAggregates pins the sweep-response parser: per-point
// spot fields sum across every series, the worst success fraction is
// kept, and bodies with no points are rejected.
func TestParseSpotAggregates(t *testing.T) {
	body := []byte(`{
		"series": [
			{"algorithm": "heftbudg-spot", "points": [
				{"budget": 0.01, "successFrac": 0.75, "spotVMs": 2, "revocations": 1.5, "reworkCost": 0.002},
				{"budget": 0.02, "successFrac": 1}
			]},
			{"algorithm": "heftbudg", "points": [
				{"budget": 0.01, "successFrac": 0.5, "spotVMs": 1, "revocations": 0.25, "reworkCost": 0.0005}
			]}
		]
	}`)
	agg, err := parseSpotAggregates(body)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Points != 3 {
		t.Errorf("Points = %d, want 3", agg.Points)
	}
	close := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if !close(agg.SpotVMs, 3) {
		t.Errorf("SpotVMs = %g, want 3", agg.SpotVMs)
	}
	if !close(agg.Revocations, 1.75) {
		t.Errorf("Revocations = %g, want 1.75", agg.Revocations)
	}
	if !close(agg.ReworkCost, 0.0025) {
		t.Errorf("ReworkCost = %g, want 0.0025", agg.ReworkCost)
	}
	if !close(agg.MinSuccess, 0.5) {
		t.Errorf("MinSuccess = %g, want 0.5", agg.MinSuccess)
	}

	if _, err := parseSpotAggregates([]byte(`{"series": []}`)); err == nil {
		t.Error("pointless response: want error, got nil")
	}
	if _, err := parseSpotAggregates([]byte(`{"series": [{`)); err == nil {
		t.Error("malformed JSON: want error, got nil")
	}
}

// TestRunSpot drives the -spot mode against a fake sweep endpoint and
// checks that the request carries the spot market and that the summary
// reports the aggregated revocation and rework-cost lines.
func TestRunSpot(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" {
			t.Errorf("unexpected path %q", r.URL.Path)
		}
		raw, _ := io.ReadAll(r.Body)
		var req struct {
			Algorithms []string        `json:"algorithms"`
			Market     json.RawMessage `json:"market"`
		}
		if err := json.Unmarshal(raw, &req); err != nil {
			t.Errorf("request body: %v", err)
		}
		if len(req.Algorithms) != 1 || req.Algorithms[0] != "heftbudg-spot" {
			t.Errorf("algorithms = %v, want [heftbudg-spot]", req.Algorithms)
		}
		if len(req.Market) == 0 {
			t.Error("request missing market spec")
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"series": [{"algorithm": "heftbudg-spot", "points": [
			{"budget": 0.01, "successFrac": 0.75, "spotVMs": 2, "revocations": 0.5, "reworkCost": 0.001},
			{"budget": 0.02, "successFrac": 1, "spotVMs": 1, "revocations": 0.25, "reworkCost": 0.0005}
		]}]}`))
	}))
	defer srv.Close()

	var out strings.Builder
	err := run([]string{"-url", srv.URL, "-spot", "-n", "2", "-c", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"loadgen -spot: 2 spot sweeps",
		"status 200: 2",
		"sweep points aggregated: 4",
		"spot VMs per execution (mean over points): 1.500",
		"revocations per execution (mean over points): 0.375",
		"rework cost per execution (mean over points): $0.000750",
		"worst success fraction: 0.750",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
