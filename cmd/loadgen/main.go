// Command loadgen fires concurrent /v1/schedule requests at a running
// budgetwfd and reports the status-code mix, latency spread and cache
// behaviour. It is the load half of `make loadtest`: a few hundred
// requests with a handful of distinct workflows demonstrates both the
// admission control (429s under a small pool) and the plan cache
// (most repeats served as hits).
//
// With -jobs it instead exercises the async-job subsystem: it submits
// sweep campaigns to POST /v1/jobs, polls each job with the same
// capped+jittered backoff it uses for 429s until the job is terminal,
// and reports end-to-end job latency percentiles plus the dedupe rate
// (repeated specs collapse onto one job, like cache hits).
//
// With -tenants it drives the multi-tenant shared-pool service of a
// daemon started with -pool: submissions are spread round-robin over
// that many tenant identities against POST /v1/submit, and the report
// includes per-tenant billing ledgers from GET /v1/tenants — how many
// VMs each tenant leased from other tenants' already-paid billing
// periods, and how much provisioning cost the sharing saved.
//
// With -chaos it ignores -url, builds budgetwfd from the enclosing
// module, boots a real multi-process cluster (one journal-backed
// coordinator plus -chaos-workers shard workers), submits a sweep job,
// SIGKILLs a random worker and kill-restarts the coordinator mid-run,
// and verifies the merged result is byte-identical to an undisturbed
// single-process /v1/sweep (see internal/dist/chaostest).
//
// Usage:
//
//	loadgen -url http://localhost:8080 -n 200 -c 16 -distinct 4
//	loadgen -url http://localhost:8080 -jobs -n 8 -c 4 -distinct 4
//	loadgen -url http://localhost:8080 -tenants 3 -n 30 -c 4
//	loadgen -chaos -chaos-workers 3 -size 60
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"budgetwf/internal/wfgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	baseURL := fs.String("url", "http://localhost:8080", "budgetwfd base URL")
	total := fs.Int("n", 200, "total requests")
	conc := fs.Int("c", 16, "concurrent clients")
	distinct := fs.Int("distinct", 4, "distinct workflows (repeats hit the cache)")
	size := fs.Int("size", 30, "tasks per generated workflow")
	alg := fs.String("alg", "heftbudg", "algorithm to request")
	retries := fs.Int("retries", 3, "retries per request after a 429 (0 disables)")
	retryCap := fs.Duration("retry-cap", 10*time.Second, "ceiling on a single retry backoff sleep")
	jobsMode := fs.Bool("jobs", false, "async-job mode: submit sweep campaigns to /v1/jobs and poll to completion")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "give up polling a job after this long")
	tenants := fs.Int("tenants", 0, "multi-tenant mode: spread submissions over this many tenants against POST /v1/submit of a pool-enabled daemon (budgetwfd -pool)")
	chaos := fs.Bool("chaos", false, "chaos mode: boot a local multi-process cluster, kill a worker and restart the coordinator mid-sweep, and byte-diff the merged result against an undisturbed run")
	spot := fs.Bool("spot", false, "spot-market mode: sweep a two-provider spot market via POST /v1/sweep and report revocation and rework-cost aggregates")
	chaosWorkers := fs.Int("chaos-workers", 3, "shard workers in the -chaos cluster")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed picking which worker dies in -chaos mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *distinct < 1 {
		*distinct = 1
	}
	if *chaos {
		// -size defaults to 30 for the schedule modes; chaos needs a
		// sweep heavy enough that the kills land mid-run, so only an
		// explicit -size overrides the harness default sizing.
		chaosSize := 0
		if flagWasSet(fs, "size") {
			chaosSize = *size
		}
		return runChaos(stdout, *chaosWorkers, chaosSize, *chaosSeed, *jobTimeout)
	}
	if *spot {
		// Sweeps are far heavier than single schedules; only an explicit
		// -n overrides a spot-sized default request count.
		spotTotal := 8
		if flagWasSet(fs, "n") {
			spotTotal = *total
		}
		spotSize := 20
		if flagWasSet(fs, "size") {
			spotSize = *size
		}
		return runSpot(stdout, *baseURL, spotTotal, *conc, spotSize, *retries, *retryCap)
	}
	if *jobsMode {
		return runJobs(stdout, *baseURL, *total, *conc, *distinct, *size, *retryCap, *jobTimeout)
	}
	if *tenants > 0 {
		return runTenants(stdout, *baseURL, *total, *conc, *tenants, *size, *alg, *retries, *retryCap)
	}

	// Pre-render the request bodies: distinct Montage instances, each
	// with a generous budget so every algorithm finds a feasible plan.
	bodies := make([][]byte, *distinct)
	for i := range bodies {
		w, err := wfgen.Generate(wfgen.Montage, *size, uint64(1000+i))
		if err != nil {
			return err
		}
		var wbuf bytes.Buffer
		if err := w.WithSigmaRatio(0.5).WriteJSON(&wbuf); err != nil {
			return err
		}
		body, err := json.Marshal(map[string]any{
			"workflow":  json.RawMessage(wbuf.Bytes()),
			"algorithm": *alg,
			"budget":    100.0,
		})
		if err != nil {
			return err
		}
		bodies[i] = body
	}

	type result struct {
		status  int
		cached  bool
		retried int
		latency time.Duration
		err     error
	}
	results := make([]result, *total)
	var wg sync.WaitGroup
	sem := make(chan struct{}, *conc)
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	for i := 0; i < *total; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rnd := rand.New(rand.NewSource(int64(i) + 1))
			t0 := time.Now()
			var resp *http.Response
			var err error
			retried := 0
			for attempt := 0; ; attempt++ {
				resp, err = client.Post(*baseURL+"/v1/schedule", "application/json",
					bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					results[i] = result{err: err, retried: retried}
					return
				}
				if resp.StatusCode != http.StatusTooManyRequests || attempt >= *retries {
					break
				}
				// Admission control said no: honor its Retry-After under a
				// capped exponential backoff with jitter, so a burst of
				// rejected clients does not reconverge on the same instant.
				retryAfter := resp.Header.Get("Retry-After")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(retryDelay(retryAfter, attempt, *retryCap, rnd, time.Now()))
				retried++
			}
			var payload struct {
				Cached bool `json:"cached"`
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			_ = json.Unmarshal(body, &payload)
			results[i] = result{status: resp.StatusCode, cached: payload.Cached, retried: retried, latency: time.Since(t0)}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	statuses := map[int]int{}
	cached, errs := 0, 0
	totalRetries, retriedReqs := 0, 0
	var lats []time.Duration
	for _, r := range results {
		totalRetries += r.retried
		if r.retried > 0 {
			retriedReqs++
		}
		if r.err != nil {
			errs++
			continue
		}
		statuses[r.status]++
		if r.cached {
			cached++
		}
		lats = append(lats, r.latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration { return percentile(lats, p) }

	fmt.Fprintf(stdout, "loadgen: %d requests, concurrency %d, %d distinct workflows, %.2fs wall\n",
		*total, *conc, *distinct, elapsed.Seconds())
	var codes []int
	for code := range statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(stdout, "  status %d: %d\n", code, statuses[code])
	}
	if errs > 0 {
		fmt.Fprintf(stdout, "  transport errors: %d\n", errs)
	}
	fmt.Fprintf(stdout, "  cache hits (client-observed): %d\n", cached)
	fmt.Fprintf(stdout, "  429 retries: %d across %d requests\n", totalRetries, retriedReqs)
	fmt.Fprintf(stdout, "  latency p50=%v p90=%v p99=%v max=%v\n", pct(0.50), pct(0.90), pct(0.99), pct(1.0))
	if s5 := statuses[500]; s5 > 0 {
		return fmt.Errorf("%d requests returned 500", s5)
	}
	return nil
}

// runJobs is the -jobs mode: n async sweep-job submissions with
// distinct seed specs (repeats past -distinct dedupe server-side onto
// the same job id), each polled to a terminal state with the shared
// capped+jittered backoff, reporting end-to-end job latency.
//
// Transport errors on submit or poll (connection refused/reset — the
// coordinator restarting mid-run) are treated exactly like a 503:
// retried under the capped+jittered backoff until the -job-timeout
// deadline, never surfaced as failures, and counted as reconnects in
// the summary. A journal-backed coordinator restores the job on
// restart, so the same job id resolves once it is back.
func runJobs(stdout io.Writer, baseURL string, total, conc, distinct, size int, retryCap, jobTimeout time.Duration) error {
	type jobResult struct {
		state      string
		deduped    bool
		traceID    string
		polls      int
		reconnects int
		latency    time.Duration
		err        error
	}
	client := &http.Client{Timeout: 60 * time.Second}
	results := make([]jobResult, total)
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	start := time.Now()
	for i := 0; i < total; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rnd := rand.New(rand.NewSource(int64(i) + 1))
			// A deliberately small sweep so the run is about the job
			// machinery, not the experiment; the seed cycles through
			// -distinct values so repeats hit the dedupe path.
			body, _ := json.Marshal(map[string]any{
				"kind": "sweep",
				"sweep": map[string]any{
					"workflowType": "montage",
					"n":            size,
					"gridK":        2,
					"instances":    1,
					"replications": 2,
					"seed":         1000 + i%distinct,
				},
			})
			t0 := time.Now()
			deadline := time.Now().Add(jobTimeout)
			reconnects := 0
			var sub struct {
				JobID   string `json:"jobId"`
				Deduped bool   `json:"deduped"`
				TraceID string `json:"traceId"`
			}
			for attempt := 0; ; attempt++ {
				resp, err := client.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil || transientStatus(resp.StatusCode) {
					retryAfter := ""
					if err == nil {
						retryAfter = resp.Header.Get("Retry-After")
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					if time.Now().After(deadline) {
						results[i] = jobResult{reconnects: reconnects, err: fmt.Errorf("submit: coordinator unreachable for %v: %v", jobTimeout, err)}
						return
					}
					reconnects++
					time.Sleep(retryDelay(retryAfter, attempt, retryCap, rnd, time.Now()))
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					results[i] = jobResult{reconnects: reconnects, err: fmt.Errorf("submit: status %d: %s", resp.StatusCode, raw)}
					return
				}
				if err := json.Unmarshal(raw, &sub); err != nil || sub.JobID == "" {
					results[i] = jobResult{reconnects: reconnects, err: fmt.Errorf("submit: bad body %q", raw)}
					return
				}
				break
			}
			// Poll with the same backoff schedule used for 429s: no
			// Retry-After hint, so 100ms doubling to the cap, jittered.
			for attempt := 0; ; attempt++ {
				if time.Now().After(deadline) {
					results[i] = jobResult{state: "timeout", deduped: sub.Deduped, polls: attempt, reconnects: reconnects, err: fmt.Errorf("job %s: not terminal after %v", sub.JobID, jobTimeout)}
					return
				}
				time.Sleep(retryDelay("", attempt, retryCap, rnd, time.Now()))
				st, err := client.Get(baseURL + "/v1/jobs/" + sub.JobID)
				if err != nil {
					reconnects++
					continue
				}
				raw, _ := io.ReadAll(st.Body)
				st.Body.Close()
				if transientStatus(st.StatusCode) {
					reconnects++
					continue
				}
				var view struct {
					State string `json:"state"`
					Error string `json:"error"`
				}
				if err := json.Unmarshal(raw, &view); err != nil {
					results[i] = jobResult{err: fmt.Errorf("poll: bad body %q", raw), polls: attempt + 1, reconnects: reconnects}
					return
				}
				switch view.State {
				case "done", "failed", "cancelled":
					r := jobResult{state: view.State, deduped: sub.Deduped, traceID: sub.TraceID, polls: attempt + 1, reconnects: reconnects, latency: time.Since(t0)}
					if view.Error != "" {
						r.err = fmt.Errorf("job %s: %s", sub.JobID, view.Error)
					}
					results[i] = r
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	states := map[string]int{}
	deduped, errs, polls, reconnects := 0, 0, 0, 0
	var lats []time.Duration
	for _, r := range results {
		polls += r.polls
		reconnects += r.reconnects
		if r.deduped {
			deduped++
		}
		if r.err != nil {
			errs++
		}
		if r.state != "" {
			states[r.state]++
		}
		if r.state == "done" {
			lats = append(lats, r.latency)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration { return percentile(lats, p) }

	fmt.Fprintf(stdout, "loadgen -jobs: %d submissions, concurrency %d, %d distinct specs, %.2fs wall\n",
		total, conc, distinct, elapsed.Seconds())
	var names []string
	for s := range states {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		fmt.Fprintf(stdout, "  %s: %d\n", s, states[s])
	}
	fmt.Fprintf(stdout, "  deduped submissions: %d\n", deduped)
	fmt.Fprintf(stdout, "  polls: %d total\n", polls)
	fmt.Fprintf(stdout, "  reconnects (transport errors / 5xx retried): %d\n", reconnects)
	fmt.Fprintf(stdout, "  job e2e latency p50=%v p90=%v p99=%v max=%v\n", pct(0.50), pct(0.90), pct(0.99), pct(1.0))
	// Per-phase latency from one sampled done job's stitched trace.
	for _, r := range results {
		if r.state == "done" && r.traceID != "" {
			reportJobPhases(stdout, client, baseURL, r.traceID)
			break
		}
	}
	if errs > 0 {
		return fmt.Errorf("%d jobs errored", errs)
	}
	return nil
}

// transientStatus reports whether an HTTP status from the coordinator
// should be retried like a connection failure: 502/503/504 cover a
// restarting or draining daemon (and any proxy in front of it), and
// 429 is the admission queue asking for backoff.
func transientStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// flagWasSet reports whether the user set the named flag explicitly.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// latency sample by linear interpolation between the two nearest order
// statistics (the same estimator numpy and most load tools default
// to). An empty sample reports 0; p outside [0,1] is clamped.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}

// retryDelay computes the sleep before the (attempt+1)-th try of a
// 429-rejected request: the server's Retry-After hint (default 100ms
// when absent or unparseable) doubled per prior attempt, clamped to
// cap, minus up to a quarter of random jitter so synchronized clients
// spread out instead of stampeding back together.
//
// RFC 9110 §10.2.3 allows two Retry-After forms, and both are honored:
// a non-negative integer of delta-seconds (0 meaning "retry now": no
// backoff beyond the jitterless zero sleep), or an HTTP-date, whose
// delta from now is used (a date in the past counts as 0). Negative
// integers and anything unparseable fall back to the default base.
func retryDelay(retryAfter string, attempt int, cap time.Duration, rnd *rand.Rand, now time.Time) time.Duration {
	base := 100 * time.Millisecond
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		base = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(strings.TrimSpace(retryAfter)); err == nil {
		base = at.Sub(now)
		if base < 0 {
			base = 0
		}
	}
	if cap > 0 && base > cap {
		base = cap
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if cap > 0 && d > cap {
		d = cap
	}
	if d <= 0 {
		return 0
	}
	return d - time.Duration(rnd.Int63n(int64(d)/4+1))
}
