package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"budgetwf/internal/wfgen"
)

// runTenants is the -tenants mode: n workflow submissions spread
// round-robin over that many tenant identities against POST /v1/submit
// of a pool-enabled daemon (budgetwfd -pool). Afterwards it pulls the
// authoritative ledgers from GET /v1/tenants and reports, per tenant,
// what the shared pool did: how many VMs were leased from other
// tenants' already-paid billing periods, how much provisioning cost
// that reuse saved, and what each tenant was actually billed.
func runTenants(stdout io.Writer, baseURL string, total, conc, tenants, size int, alg string, retries int, retryCap time.Duration) error {
	if tenants < 1 {
		tenants = 1
	}
	// Distinct workflows per request: the pool path plans every arrival
	// against the live pool snapshot (never the plan cache), so there
	// is nothing to gain from repeats — vary the instances instead.
	bodies := make([][]byte, total)
	for i := range bodies {
		w, err := wfgen.Generate(wfgen.Montage, size, uint64(2000+i))
		if err != nil {
			return err
		}
		var wbuf bytes.Buffer
		if err := w.WithSigmaRatio(0.5).WriteJSON(&wbuf); err != nil {
			return err
		}
		body, err := json.Marshal(map[string]any{
			"tenant":    map[string]any{"id": fmt.Sprintf("tenant-%d", i%tenants)},
			"workflow":  json.RawMessage(wbuf.Bytes()),
			"algorithm": alg,
			"budget":    100.0,
		})
		if err != nil {
			return err
		}
		bodies[i] = body
	}

	type result struct {
		status  int
		state   string
		reused  int
		saved   float64
		charged float64
		retried int
		latency time.Duration
		err     error
	}
	results := make([]result, total)
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	for i := 0; i < total; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rnd := rand.New(rand.NewSource(int64(i) + 1))
			t0 := time.Now()
			var resp *http.Response
			var err error
			retried := 0
			for attempt := 0; ; attempt++ {
				resp, err = client.Post(baseURL+"/v1/submit", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					results[i] = result{err: err, retried: retried}
					return
				}
				if resp.StatusCode != http.StatusTooManyRequests || attempt >= retries {
					break
				}
				// Fair-share admission said no (tenant VM or queue cap):
				// honor Retry-After with the shared capped+jittered backoff.
				retryAfter := resp.Header.Get("Retry-After")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(retryDelay(retryAfter, attempt, retryCap, rnd, time.Now()))
				retried++
			}
			var payload struct {
				State         string  `json:"state"`
				ReusedVMs     int     `json:"reusedVMs"`
				SavedInitCost float64 `json:"savedInitCost"`
				Charged       float64 `json:"charged"`
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			_ = json.Unmarshal(raw, &payload)
			results[i] = result{
				status: resp.StatusCode, state: payload.State,
				reused: payload.ReusedVMs, saved: payload.SavedInitCost,
				charged: payload.Charged, retried: retried, latency: time.Since(t0),
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	statuses := map[int]int{}
	errs, retriedReqs, totalRetries, reused := 0, 0, 0, 0
	saved, charged := 0.0, 0.0
	var lats []time.Duration
	for _, r := range results {
		totalRetries += r.retried
		if r.retried > 0 {
			retriedReqs++
		}
		if r.err != nil {
			errs++
			continue
		}
		statuses[r.status]++
		reused += r.reused
		saved += r.saved
		charged += r.charged
		lats = append(lats, r.latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration { return percentile(lats, p) }

	fmt.Fprintf(stdout, "loadgen -tenants: %d submissions across %d tenants, concurrency %d, %.2fs wall\n",
		total, tenants, conc, elapsed.Seconds())
	var codes []int
	for code := range statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(stdout, "  status %d: %d\n", code, statuses[code])
	}
	if errs > 0 {
		fmt.Fprintf(stdout, "  transport errors: %d\n", errs)
	}
	fmt.Fprintf(stdout, "  VMs leased across tenants: %d (saved %.4f in provisioning cost)\n", reused, saved)
	fmt.Fprintf(stdout, "  total charged: %.4f\n", charged)
	fmt.Fprintf(stdout, "  429 retries: %d across %d requests\n", totalRetries, retriedReqs)
	fmt.Fprintf(stdout, "  latency p50=%v p90=%v p99=%v max=%v\n", pct(0.50), pct(0.90), pct(0.99), pct(1.0))

	// The server-side ledgers are the ground truth: print each tenant's
	// billing line so the run doubles as a shared-pool demo.
	if err := printTenantLedgers(stdout, client, baseURL); err != nil {
		fmt.Fprintf(stdout, "  (ledger fetch failed: %v)\n", err)
	}
	if s5 := statuses[500]; s5 > 0 {
		return fmt.Errorf("%d submissions returned 500", s5)
	}
	return nil
}

// printTenantLedgers renders GET /v1/tenants as one line per tenant.
func printTenantLedgers(stdout io.Writer, client *http.Client, baseURL string) error {
	resp, err := client.Get(baseURL + "/v1/tenants")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var view struct {
		Tenants []struct {
			ID            string  `json:"id"`
			Submissions   int     `json:"submissions"`
			Completed     int     `json:"completed"`
			Rejected      int     `json:"rejected"`
			Billed        float64 `json:"billed"`
			ReusedVMs     int     `json:"reusedVMs"`
			SavedInitCost float64 `json:"savedInitCost"`
		} `json:"tenants"`
		Pool struct {
			BilledTotal   float64 `json:"billedTotal"`
			Reused        int     `json:"reused"`
			SavedInitCost float64 `json:"savedInitCost"`
		} `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "  tenant ledgers (server-side):\n")
	for _, t := range view.Tenants {
		fmt.Fprintf(stdout, "    %-12s submitted=%d completed=%d rejected=%d billed=%.4f reusedVMs=%d savedInit=%.4f\n",
			t.ID, t.Submissions, t.Completed, t.Rejected, t.Billed, t.ReusedVMs, t.SavedInitCost)
	}
	fmt.Fprintf(stdout, "    pool total: billed=%.4f reusedVMs=%d savedInit=%.4f\n",
		view.Pool.BilledTotal, view.Pool.Reused, view.Pool.SavedInitCost)
	return nil
}
