package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The -spot mode: fire spot-market sweep requests at POST /v1/sweep
// and fold the per-point spot aggregates — VM bookings, revocations,
// rework cost — into the run summary. Each request sweeps the same
// two-provider market under a distinct seed, so the daemon's spot
// metric families (budgetwfd_spot_*_total) advance measurably while
// the client-side report cross-checks what the server accounted.

// spotSweepMarket is the market swept by every -spot request: two
// providers, a revocable spot twin on the home provider's small
// category, and a priced cross-provider transfer link.
const spotSweepMarket = `{
  "providers": [
    {"name": "alpha", "categories": [
      {"name": "small", "speed": 1e9, "costPerSec": 6.444e-6, "initCost": 0.0001,
       "spot": {"discount": 0.6, "revocationsPerHour": 4}},
      {"name": "large", "speed": 4e9, "costPerSec": 5.155e-5, "initCost": 0.0001}
    ]},
    {"name": "beta", "categories": [
      {"name": "std", "speed": 2e9, "costPerSec": 1.823e-5, "initCost": 0.0001}
    ]}
  ],
  "transfer": [[{}, {"costPerGB": 0.02, "latencySec": 0.5}],
               [{"costPerGB": 0.02, "latencySec": 0.5}, {}]]
}`

// spotAggregates are the spot outcomes parsed from one /v1/sweep
// response: sums of the per-execution means over every (algorithm,
// budget) point, plus the worst completion fraction across points.
type spotAggregates struct {
	Points      int
	SpotVMs     float64
	Revocations float64
	ReworkCost  float64
	MinSuccess  float64
}

// parseSpotAggregates folds a sweep response body into spotAggregates.
// A response without any points is an error: a spot sweep that
// produced nothing to aggregate means the request was wrong, not that
// the market was calm.
func parseSpotAggregates(body []byte) (spotAggregates, error) {
	var resp struct {
		Series []struct {
			Points []struct {
				SuccessFrac float64 `json:"successFrac"`
				SpotVMs     float64 `json:"spotVMs"`
				Revocations float64 `json:"revocations"`
				ReworkCost  float64 `json:"reworkCost"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return spotAggregates{}, err
	}
	agg := spotAggregates{MinSuccess: 1}
	for _, s := range resp.Series {
		for _, p := range s.Points {
			agg.Points++
			agg.SpotVMs += p.SpotVMs
			agg.Revocations += p.Revocations
			agg.ReworkCost += p.ReworkCost
			if p.SuccessFrac < agg.MinSuccess {
				agg.MinSuccess = p.SuccessFrac
			}
		}
	}
	if agg.Points == 0 {
		return spotAggregates{}, fmt.Errorf("no sweep points in response")
	}
	return agg, nil
}

// runSpot drives the -spot mode: total spot-market sweeps against
// POST /v1/sweep with the shared 429 backoff, each under its own seed,
// summarized with the parsed spot aggregates.
func runSpot(stdout io.Writer, baseURL string, total, conc, size int, retries int, retryCap time.Duration) error {
	type result struct {
		status  int
		agg     spotAggregates
		parsed  bool
		retried int
		latency time.Duration
		err     error
	}
	results := make([]result, total)
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	client := &http.Client{Timeout: 5 * time.Minute}
	start := time.Now()
	for i := 0; i < total; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rnd := rand.New(rand.NewSource(int64(i) + 1))
			body, _ := json.Marshal(map[string]any{
				"workflowType": "montage",
				"n":            size,
				"algorithms":   []string{"heftbudg-spot"},
				"gridK":        3,
				"instances":    1,
				"replications": 4,
				"seed":         2000 + i,
				"market":       json.RawMessage(spotSweepMarket),
			})
			t0 := time.Now()
			var resp *http.Response
			var err error
			retried := 0
			for attempt := 0; ; attempt++ {
				resp, err = client.Post(baseURL+"/v1/sweep", "application/json", bytes.NewReader(body))
				if err != nil {
					results[i] = result{err: err, retried: retried}
					return
				}
				if resp.StatusCode != http.StatusTooManyRequests || attempt >= retries {
					break
				}
				retryAfter := resp.Header.Get("Retry-After")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(retryDelay(retryAfter, attempt, retryCap, rnd, time.Now()))
				retried++
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			r := result{status: resp.StatusCode, retried: retried, latency: time.Since(t0)}
			if resp.StatusCode == http.StatusOK {
				if agg, err := parseSpotAggregates(raw); err == nil {
					r.agg, r.parsed = agg, true
				} else {
					r.err = fmt.Errorf("parse sweep response: %w", err)
				}
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	statuses := map[int]int{}
	errs, totalRetries := 0, 0
	var agg spotAggregates
	agg.MinSuccess = 1
	parsed := 0
	var lats []time.Duration
	for _, r := range results {
		totalRetries += r.retried
		if r.err != nil {
			errs++
		}
		if r.status != 0 {
			statuses[r.status]++
		}
		if r.parsed {
			parsed++
			agg.Points += r.agg.Points
			agg.SpotVMs += r.agg.SpotVMs
			agg.Revocations += r.agg.Revocations
			agg.ReworkCost += r.agg.ReworkCost
			if r.agg.MinSuccess < agg.MinSuccess {
				agg.MinSuccess = r.agg.MinSuccess
			}
			lats = append(lats, r.latency)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration { return percentile(lats, p) }

	fmt.Fprintf(stdout, "loadgen -spot: %d spot sweeps, concurrency %d, %.2fs wall\n", total, conc, elapsed.Seconds())
	var codes []int
	for code := range statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(stdout, "  status %d: %d\n", code, statuses[code])
	}
	if errs > 0 {
		fmt.Fprintf(stdout, "  errors: %d\n", errs)
	}
	fmt.Fprintf(stdout, "  429 retries: %d\n", totalRetries)
	if parsed > 0 {
		pts := float64(agg.Points)
		fmt.Fprintf(stdout, "  sweep points aggregated: %d\n", agg.Points)
		fmt.Fprintf(stdout, "  spot VMs per execution (mean over points): %.3f\n", agg.SpotVMs/pts)
		fmt.Fprintf(stdout, "  revocations per execution (mean over points): %.3f\n", agg.Revocations/pts)
		fmt.Fprintf(stdout, "  rework cost per execution (mean over points): $%.6f\n", agg.ReworkCost/pts)
		fmt.Fprintf(stdout, "  worst success fraction: %.3f\n", agg.MinSuccess)
	}
	fmt.Fprintf(stdout, "  latency p50=%v p90=%v p99=%v max=%v\n", pct(0.50), pct(0.90), pct(0.99), pct(1.0))
	if errs > 0 {
		return fmt.Errorf("%d spot sweeps errored", errs)
	}
	return nil
}
