package main

import (
	"testing"
	"time"

	"budgetwf/internal/obs"
)

func TestExtractPhases(t *testing.T) {
	// Root runs [0, 1000]; two remote shards with stitched compute
	// subtrees, one local shard (no compute child, skipped), and a
	// 100µs merge tail after the last shard ends at 900.
	tr := &obs.TraceJSON{
		ID: "job-x",
		Root: &obs.SpanJSON{
			Name: "job:sweep", StartUs: 0, DurUs: 1000,
			Children: []*obs.SpanJSON{
				{Name: "shard", StartUs: 0, DurUs: 500, Children: []*obs.SpanJSON{
					{Name: "compute", StartUs: 100, DurUs: 300},
				}},
				{Name: "shard", StartUs: 200, DurUs: 700, Children: []*obs.SpanJSON{
					{Name: "compute", StartUs: 300, DurUs: 500},
				}},
				{Name: "shard", StartUs: 0, DurUs: 50}, // local: no compute
			},
		},
	}
	ph, err := extractPhases(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ph.shards != 2 {
		t.Errorf("shards = %d, want 2", ph.shards)
	}
	// compute samples: 300µs, 500µs → p50 = 400µs; dispatch overhead:
	// 200µs, 200µs → p50 = 200µs; merge tail: 1000 − 900 = 100µs.
	if want := 400 * time.Microsecond; ph.computeP50 != want {
		t.Errorf("compute p50 = %v, want %v", ph.computeP50, want)
	}
	if want := 200 * time.Microsecond; ph.dispatchP50 != want {
		t.Errorf("dispatch p50 = %v, want %v", ph.dispatchP50, want)
	}
	if want := 100 * time.Microsecond; ph.merge != want {
		t.Errorf("merge = %v, want %v", ph.merge, want)
	}

	// All-local traces are an error the caller downgrades to a note.
	local := &obs.TraceJSON{Root: &obs.SpanJSON{Name: "job:sweep", DurUs: 10,
		Children: []*obs.SpanJSON{{Name: "shard", DurUs: 5}}}}
	if _, err := extractPhases(local); err == nil {
		t.Error("unstitched trace must not yield phases")
	}
	if _, err := extractPhases(nil); err == nil {
		t.Error("nil trace must not yield phases")
	}
}
