package main

import (
	"strings"
	"testing"
)

func TestRunPlansAndSimulates(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-type", "montage", "-n", "30", "-alg", "heftbudg", "-reps", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stochastic executions", "makespan", "valid"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWithDeadline(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-type", "ligo", "-n", "30", "-alg", "heft", "-reps", "5", "-deadline", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "deadline") {
		t.Error("deadline report missing")
	}
	// A 1-second deadline is unmeetable.
	if !strings.Contains(out.String(), "0.0% met the 1 s deadline") {
		t.Errorf("deadline stats wrong:\n%s", out.String())
	}
}

func TestRunGanttAndTrace(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-type", "montage", "-n", "30", "-alg", "heftbudg", "-reps", "2", "-gantt", "-print-trace"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Gantt:") {
		t.Error("gantt missing")
	}
	if !strings.Contains(out.String(), "compute_start") {
		t.Error("trace missing")
	}
}

func TestRunScheduleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	wfPath := dir + "/w.json"
	w, err := loadWorkflow("", "cybershake", 30, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SaveFile(wfPath); err != nil {
		t.Fatal(err)
	}
	// Plan and save a schedule with the sibling tool's logic: easiest
	// is to plan in-process and write it ourselves.
	var out strings.Builder
	if err := run([]string{"-wf", wfPath, "-alg", "heftbudg", "-budget", "5", "-reps", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CYBERSHAKE-30-seed1") {
		t.Error("workflow file not used")
	}
}

func TestRunRejectsMismatchedSchedule(t *testing.T) {
	dir := t.TempDir()
	wfPath := dir + "/w.json"
	w, err := loadWorkflow("", "montage", 30, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SaveFile(wfPath); err != nil {
		t.Fatal(err)
	}
	// A schedule for a DIFFERENT (larger) workflow must be rejected.
	big, err := loadWorkflow("", "montage", 60, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := planFor(big)
	if err != nil {
		t.Fatal(err)
	}
	schedPath := dir + "/s.json"
	f, err := createFile(schedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out strings.Builder
	if err := run([]string{"-wf", wfPath, "-sched", schedPath, "-reps", "1"}, &out); err == nil {
		t.Error("mismatched schedule accepted")
	}
}

func TestRunChromeTrace(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	var out strings.Builder
	err := run([]string{"-type", "montage", "-n", "30", "-alg", "heftbudg", "-reps", "1", "-chrome-trace", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := readFileHelper(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "traceEvents") {
		t.Error("chrome trace missing traceEvents")
	}
}

func TestRunSVGGantt(t *testing.T) {
	path := t.TempDir() + "/gantt.svg"
	var out strings.Builder
	err := run([]string{"-type", "ligo", "-n", "30", "-alg", "heftbudg", "-reps", "1", "-svg-gantt", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := readFileHelper(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(data, "<svg") {
		t.Errorf("not SVG: %.40s", data)
	}
}

func TestRunFaultInjection(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-type", "montage", "-n", "30", "-alg", "heftbudg", "-reps", "5",
		"-fault-rate", "0.5", "-fault-boot-fail", "0.05", "-fault-recovery", "replicate"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fault-injected executions", "success", "recovery replicate", "budget guard"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFaultInjectionZeroRateMatchesPlain(t *testing.T) {
	// A spec with only transient failures at probability 0 still takes
	// the fault path; its makespan line must agree with the plain run
	// over the same -sim-seed streams.
	var plain, faulty strings.Builder
	common := []string{"-type", "ligo", "-n", "30", "-alg", "heftbudg", "-reps", "5"}
	if err := run(common, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, common...), "-fault-rate", "1e-12"), &faulty); err != nil {
		t.Fatal(err)
	}
	pick := func(s, prefix string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, prefix) {
				return strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, prefix)), " s (completed runs)")
			}
		}
		return ""
	}
	want := strings.TrimSuffix(pick(plain.String(), "makespan"), " s")
	got := pick(faulty.String(), "makespan")
	if want == "" || got != want {
		t.Errorf("fault path diverged at λ≈0: %q vs %q\nplain:\n%s\nfaulty:\n%s",
			got, want, plain.String(), faulty.String())
	}
}

func TestRunFaultSweepCLI(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-type", "montage", "-n", "12", "-reps", "3", "-fault-sweep", "0, 0.5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fault sweep", "success", "recovery retry-same"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if got := strings.Count(out.String(), "\n"); got != 4 { // header + column row + 2 rates
		t.Errorf("want 4 lines, got %d:\n%s", got, out.String())
	}
}

func TestRunFaultFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-type", "montage", "-n", "12", "-fault-sweep", "0,0.5", "-wf", "nope.json"},
		{"-type", "montage", "-n", "12", "-fault-sweep", " , "},
		{"-type", "montage", "-n", "12", "-fault-sweep", "0,banana"},
		{"-type", "montage", "-n", "12", "-reps", "1", "-fault-rate", "0.5", "-fault-recovery", "bogus"},
		{"-type", "montage", "-n", "12", "-reps", "1", "-fault-boot-fail", "1.5"},
		{"-type", "montage", "-n", "12", "-reps", "1", "-fault-rate", "0.5", "-gantt"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWritesSpanTrace(t *testing.T) {
	path := t.TempDir() + "/spans.json"
	var out strings.Builder
	err := run([]string{"-type", "montage", "-n", "20", "-alg", "heftbudg", "-reps", "3", "-trace", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := readFileHelper(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"traceEvents", "plan:heftbudg", "budget-guard", "replication"} {
		if !strings.Contains(data, want) {
			t.Errorf("span trace missing %q", want)
		}
	}
	if got := strings.Count(data, `"replication"`); got != 3 {
		t.Errorf("span trace has %d replication events, want 3", got)
	}
}

func TestRunWritesFaultSpanTrace(t *testing.T) {
	path := t.TempDir() + "/fault-spans.json"
	var out strings.Builder
	err := run([]string{"-type", "montage", "-n", "20", "-alg", "heftbudg", "-reps", "3",
		"-fault-boot-fail", "0.9", "-fault-retries", "1", "-trace", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := readFileHelper(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"traceEvents", "replication", "boot-failure"} {
		if !strings.Contains(data, want) {
			t.Errorf("fault span trace missing %q", want)
		}
	}
}

func TestRunAnalyticEstimator(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-type", "montage", "-n", "30", "-alg", "heftbudg", "-reps", "8", "-estimator", "analytic"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"analytic estimate", "quantile samples", "P(cost > budget)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// Deterministic: a second run reproduces the report byte for byte.
	var again strings.Builder
	if err := run([]string{"-type", "montage", "-n", "30", "-alg", "heftbudg", "-reps", "8", "-estimator", "analytic"}, &again); err != nil {
		t.Fatal(err)
	}
	if out.String() != again.String() {
		t.Errorf("analytic report not deterministic:\n%s\nvs\n%s", out.String(), again.String())
	}
}

func TestRunAnalyticEstimatorFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown estimator": {"-type", "montage", "-n", "30", "-estimator", "montecarlo"},
		"with gantt":        {"-type", "montage", "-n", "30", "-estimator", "analytic", "-gantt"},
		"with svg":          {"-type", "montage", "-n", "30", "-estimator", "analytic", "-svg-gantt", "x.svg"},
		"with faults":       {"-type", "montage", "-n", "30", "-estimator", "analytic", "-fault-rate", "0.1"},
		"with fault sweep":  {"-type", "montage", "-n", "30", "-estimator", "analytic", "-fault-sweep", "0,0.1"},
		"with deadline":     {"-type", "montage", "-n", "30", "-estimator", "analytic", "-deadline", "100"},
	}
	for name, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("%s: run succeeded, want an error", name)
		}
	}
}
