// Command simulate replays a schedule under stochastic task weights
// and reports realized makespan/cost statistics, the paper's
// evaluation loop for a single (workflow, schedule) pair.
//
// Usage:
//
//	simulate -wf montage90.json -sched sched.json -reps 25 -budget 12.5
//	simulate -type ligo -n 30 -sigma 0.5 -alg heftbudg -budget-factor 1.5 -reps 100
//	simulate -type montage -n 30 -alg heftbudg -gantt -print-trace
//	simulate -type montage -n 30 -alg heftbudg -trace spans.json
//	simulate -type montage -n 30 -alg heftbudg -estimator analytic
//
// -estimator analytic replaces the Monte Carlo replications with the
// moment-propagation estimator (internal/est): one deterministic pass
// whose report reads the replications off the fitted quantile grid. It
// is incompatible with fault injection, the visualization flags and
// -deadline, all of which need realized executions.
//
// Either load a schedule produced by cmd/schedule (-sched), or plan
// in-process with -alg. Workflows come from -wf (JSON or DAX) or the
// generator flags. -deadline additionally reports the bi-criteria
// objective of Equation (3). -trace writes the run's span tree —
// planner decisions when planning in-process, one span per
// replication, and under fault injection the crash/recovery event
// stream — as Chrome trace-event JSON (chrome://tracing / Perfetto);
// -chrome-trace instead renders the first execution's per-VM timeline.
//
// The -fault-* flags inject VM crashes, boot failures and transient
// task failures into the executions and report robustness metrics:
//
//	simulate -type montage -n 30 -alg heftbudg -fault-rate 0.1 -fault-recovery replicate
//	simulate -type ligo -n 30 -fault-sweep 0,0.01,0.1,0.5 -fault-boot-fail 0.02
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"budgetwf/internal/est"
	"budgetwf/internal/exp"
	"budgetwf/internal/fault"
	"budgetwf/internal/obs"
	"budgetwf/internal/online"
	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/sched"
	"budgetwf/internal/sim"
	"budgetwf/internal/stats"
	"budgetwf/internal/viz"
	"budgetwf/internal/wf"
	"budgetwf/internal/wfgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		wfPath    = fs.String("wf", "", "workflow file, JSON or DAX (overrides generator flags)")
		typ       = fs.String("type", "montage", "generated workflow family")
		n         = fs.Int("n", 30, "generated workflow size")
		seed      = fs.Uint64("seed", 0, "generator seed")
		sigma     = fs.Float64("sigma", 0.5, "σ/w̄ ratio")
		schedPath = fs.String("sched", "", "schedule JSON from cmd/schedule")
		algName   = fs.String("alg", "heftbudg", "algorithm used when -sched is absent")
		budget    = fs.Float64("budget", 0, "budget in dollars")
		factor    = fs.Float64("budget-factor", 1.5, "budget as a multiple of the cheapest-schedule cost")
		deadline  = fs.Float64("deadline", 0, "deadline in seconds (0 = unconstrained)")
		reps      = fs.Int("reps", 25, "number of stochastic executions")
		simSeed   = fs.Uint64("sim-seed", 42, "simulation RNG seed")
		estName   = fs.String("estimator", "mc", `estimator: "mc" (Monte Carlo replication) or "analytic" (moment propagation, internal/est)`)
		gantt     = fs.Bool("gantt", false, "render an ASCII Gantt chart of the first execution")
		prTrace   = fs.Bool("print-trace", false, "print a per-task trace of the first execution")
		traceTo   = fs.String("trace", "", "write a Chrome trace-event JSON of the run's span tree here")
		chrome    = fs.String("chrome-trace", "", "write a Chrome trace-event JSON of the first execution's VM timeline here")
		svgGantt  = fs.String("svg-gantt", "", "write an SVG Gantt chart of the first execution here")

		faultRate     = fs.Float64("fault-rate", 0, "per-VM crash rate λ in crashes/hour (0 disables crashes)")
		faultBoot     = fs.Float64("fault-boot-fail", 0, "probability a VM boot attempt fails")
		faultTask     = fs.Float64("fault-task-fail", 0, "probability one task execution fails transiently")
		faultSeed     = fs.Uint64("fault-seed", 1, "fault-trace RNG seed")
		faultRecovery = fs.String("fault-recovery", "retry-same", "recovery policy: retry-same, resubmit-fastest or replicate")
		faultRetries  = fs.Int("fault-retries", 0, "recovery attempts per task before it fails permanently (0 = default 3)")
		faultBackoff  = fs.Float64("fault-backoff", 0, "reboot backoff in seconds for same-category recoveries")
		faultSweep    = fs.String("fault-sweep", "", `comma-separated λ grid in crashes/hour (e.g. "0,0.01,0.1,0.5"): run a robustness sweep over generated instances`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if !exp.ValidEstimator(*estName) {
		return fmt.Errorf("-estimator: must be %q or %q", exp.EstimatorMC, exp.EstimatorAnalytic)
	}
	if *estName == exp.EstimatorAnalytic {
		// The analytic estimator produces distributions, not executions:
		// there is no realized timeline to visualize, no fault trace, and
		// no joint (makespan, cost) sample for the bi-criteria objective.
		switch {
		case *faultSweep != "" || *faultRate > 0 || *faultBoot > 0 || *faultTask > 0:
			return fmt.Errorf("-estimator analytic is incompatible with fault injection; use -estimator mc")
		case *gantt || *prTrace || *chrome != "" || *svgGantt != "":
			return fmt.Errorf("visualization flags need a realized execution; use -estimator mc")
		case *deadline > 0:
			return fmt.Errorf("-deadline (the Eq. 3 bi-criteria objective) needs joint samples; use -estimator mc")
		}
	}

	spec := &fault.Spec{
		BootFailProb:     *faultBoot,
		TaskFailProb:     *faultTask,
		Seed:             *faultSeed,
		Recovery:         *faultRecovery,
		MaxRetries:       *faultRetries,
		RebootBackoffSec: *faultBackoff,
	}
	if *faultSweep != "" {
		if *wfPath != "" || *schedPath != "" {
			return fmt.Errorf("-fault-sweep generates its own instances; it is incompatible with -wf and -sched")
		}
		return runFaultSweep(stdout, *faultSweep, *typ, *n, *sigma, *seed, *reps, *algName, *factor, spec)
	}

	w, err := loadWorkflow(*wfPath, *typ, *n, *seed, *sigma)
	if err != nil {
		return err
	}
	p := platform.Default()
	anchors, err := exp.ComputeAnchors(w, p)
	if err != nil {
		return err
	}
	b := *budget
	if b == 0 {
		b = *factor * anchors.CheapCost
	}

	var tr *obs.Trace
	if *traceTo != "" {
		tr = obs.New("simulate")
		tr.Root().Set(obs.Str("workflow", w.Name), obs.Int("tasks", w.NumTasks()))
	}

	var s *plan.Schedule
	if *schedPath != "" {
		f, err := os.Open(*schedPath)
		if err != nil {
			return err
		}
		s, err = plan.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		alg, err := sched.ByName(sched.Name(*algName))
		if err != nil {
			return err
		}
		ctx := context.Background()
		if tr != nil {
			ctx = obs.WithSpan(ctx, tr.Root())
		}
		if s, err = sched.PlanContext(ctx, alg.Name, w, p, b); err != nil {
			return err
		}
	}
	if err := s.Validate(w, p.NumCategories()); err != nil {
		return fmt.Errorf("schedule does not fit workflow: %w", err)
	}

	if *faultRate > 0 || *faultBoot > 0 || *faultTask > 0 {
		if *gantt || *prTrace || *chrome != "" || *svgGantt != "" {
			return fmt.Errorf("visualization flags are not supported under fault injection")
		}
		spec.CrashRatePerHour = []float64{*faultRate}
		if err := runFaulty(stdout, w, p, s, spec, b, *reps, *simSeed, tr); err != nil {
			return err
		}
		return writeSpanTrace(stdout, tr, *traceTo)
	}

	if *estName == exp.EstimatorAnalytic {
		e, err := est.Compute(w, p, s)
		if err != nil {
			return err
		}
		// Pseudo-samples off the fitted quantile grid — the same
		// construction the sweep harness and /v1/simulate use, so the
		// summaries below aggregate identically everywhere.
		var mk, cost []float64
		valid := 0
		for i := 0; i < *reps; i++ {
			q := (float64(i) + 0.5) / float64(*reps)
			c := e.CostQuantile(q)
			mk = append(mk, e.MakespanQuantile(q))
			cost = append(cost, c)
			if b <= 0 || c <= b {
				valid++
			}
		}
		fmt.Fprintf(stdout, "workflow   %s, schedule with %d VMs, analytic estimate over %d quantile samples\n", w.Name, s.NumVMs(), *reps)
		fmt.Fprintf(stdout, "budget     $%.4f\n", b)
		fmt.Fprintf(stdout, "makespan   %s s\n", stats.Summarize(mk))
		fmt.Fprintf(stdout, "cost       %s $\n", stats.Summarize(cost))
		fmt.Fprintf(stdout, "valid      %.1f%% of quantile samples within budget (P(cost > budget) = %.3f)\n",
			100*float64(valid)/float64(*reps), e.OverrunProb(b))
		return writeSpanTrace(stdout, tr, *traceTo)
	}

	obj := sim.Objective{Deadline: *deadline, Budget: b}
	var objStats sim.ObjectiveStats
	stream := rng.New(*simSeed)
	runner, err := sim.NewRunner(w, p, s)
	if err != nil {
		return err
	}
	if tr != nil {
		runner.SetSpan(tr.Root())
	}
	var mk, cost []float64
	for i := 0; i < *reps; i++ {
		r, err := runner.RunStochastic(stream.Split(uint64(i)))
		if err != nil {
			return err
		}
		if i == 0 && *gantt {
			if err := r.WriteGantt(stdout, w, s, 100); err != nil {
				return err
			}
		}
		if i == 0 && *prTrace {
			if err := r.WriteTrace(stdout, w, s); err != nil {
				return err
			}
		}
		if i == 0 && *svgGantt != "" {
			f, err := os.Create(*svgGantt)
			if err != nil {
				return err
			}
			if err := viz.RenderGanttSVG(f, w, s, r, "Gantt — "+w.Name); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "SVG gantt written to %s\n", *svgGantt)
		}
		if i == 0 && *chrome != "" {
			f, err := os.Create(*chrome)
			if err != nil {
				return err
			}
			if err := r.WriteChromeTrace(f, w, s); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "chrome trace written to %s (load in chrome://tracing)\n", *chrome)
		}
		mk = append(mk, r.Makespan)
		cost = append(cost, r.TotalCost)
		objStats.Observe(obj, r)
	}
	fmt.Fprintf(stdout, "workflow   %s, schedule with %d VMs, %d stochastic executions\n", w.Name, s.NumVMs(), *reps)
	fmt.Fprintf(stdout, "budget     $%.4f\n", b)
	fmt.Fprintf(stdout, "makespan   %s s\n", stats.Summarize(mk))
	fmt.Fprintf(stdout, "cost       %s $\n", stats.Summarize(cost))
	fmt.Fprintf(stdout, "valid      %.1f%% of executions within budget\n", 100*objStats.Frac(objStats.BudgetMet))
	if *deadline > 0 {
		fmt.Fprintf(stdout, "deadline   %.1f%% met the %.0f s deadline; %.1f%% met the full objective (Eq. 3)\n",
			100*objStats.Frac(objStats.DeadlineMet), *deadline, 100*objStats.Frac(objStats.BothMet))
	}
	return writeSpanTrace(stdout, tr, *traceTo)
}

// writeSpanTrace closes the tracer and writes its span tree as Chrome
// trace-event JSON. A nil tracer is a no-op.
func writeSpanTrace(stdout io.Writer, tr *obs.Trace, path string) error {
	if tr == nil {
		return nil
	}
	tr.EndAll()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "span trace written to %s (load in chrome://tracing)\n", path)
	return nil
}

// runFaulty replays the schedule reps times under fault injection and
// reports robustness statistics. Budget-exhausted replications degrade
// to partial results and lower the success rate; they are not errors.
func runFaulty(stdout io.Writer, w *wf.Workflow, p *platform.Platform, s *plan.Schedule, spec *fault.Spec, budget float64, reps int, simSeed uint64, tr *obs.Trace) error {
	stream := rng.New(simSeed)
	var mk, cost []float64
	var completed, inBudget int
	var crashes, bootFails, taskFails, recov, vetoed int
	var wasted float64
	for i := 0; i < reps; i++ {
		// Same weight streams as the fault-free path, so λ → 0
		// reproduces the plain report.
		weights := sim.SampleWeights(w, stream.Split(uint64(i)))
		fs := *spec
		fs.Seed = spec.Seed + uint64(i) // fresh fault trace per replication
		var repSpan *obs.Span
		if tr != nil {
			repSpan = tr.Root().Child("replication")
			repSpan.Set(obs.Int("rep", i))
		}
		r, err := online.ExecuteFaultySpan(w, p, s, weights, &fs, budget, repSpan)
		repSpan.End()
		if err != nil {
			return err
		}
		cost = append(cost, r.TotalCost)
		if r.Completed {
			completed++
			mk = append(mk, r.Makespan)
		}
		if budget <= 0 || r.TotalCost <= budget {
			inBudget++
		}
		crashes += r.Crashes
		bootFails += r.BootFailures
		taskFails += r.TaskFailures
		recov += r.Recoveries
		vetoed += r.RecoveriesVetoed
		wasted += r.WastedSeconds
	}
	n := float64(reps)
	fmt.Fprintf(stdout, "workflow   %s, schedule with %d VMs, %d fault-injected executions\n", w.Name, s.NumVMs(), reps)
	fmt.Fprintf(stdout, "budget     $%.4f\n", budget)
	fmt.Fprintf(stdout, "faults     λ=%g/hour, boot-fail %.3f, task-fail %.3f, recovery %s\n",
		spec.CrashRatePerHour[0], spec.BootFailProb, spec.TaskFailProb, spec.RecoveryPolicy().Kind)
	fmt.Fprintf(stdout, "success    %.1f%% completed all tasks; %.1f%% within budget\n",
		100*float64(completed)/n, 100*float64(inBudget)/n)
	fmt.Fprintf(stdout, "makespan   %s s (completed runs)\n", stats.Summarize(mk))
	fmt.Fprintf(stdout, "cost       %s $\n", stats.Summarize(cost))
	fmt.Fprintf(stdout, "failures   %.2f crashes, %.2f boot failures, %.2f transient failures per run\n",
		float64(crashes)/n, float64(bootFails)/n, float64(taskFails)/n)
	fmt.Fprintf(stdout, "recovery   %.2f recoveries, %.2f vetoed by the budget guard, %.1f s wasted per run\n",
		float64(recov)/n, float64(vetoed)/n, wasted/n)
	return nil
}

// runFaultSweep evaluates the generated scenario under a λ grid via
// exp.RunFaultSweep and prints one row per crash rate.
func runFaultSweep(stdout io.Writer, grid, typ string, n int, sigma float64, seed uint64, reps int, algName string, factor float64, spec *fault.Spec) error {
	rates, err := parseRates(grid)
	if err != nil {
		return err
	}
	t, err := wfgen.ParseType(typ)
	if err != nil {
		return err
	}
	alg, err := sched.ByName(sched.Name(algName))
	if err != nil {
		return err
	}
	sc := exp.FaultScenario{
		Scenario:     exp.Scenario{Type: t, N: n, SigmaRatio: sigma, Seed: seed, Reps: reps},
		Rates:        rates,
		Alg:          alg,
		BudgetFactor: factor,
		Spec:         *spec,
	}
	res, err := exp.RunFaultSweep(sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "fault sweep  %s n=%d, %d instances × %d reps per λ, mean budget $%.4f (β=%.2f), recovery %s\n",
		typ, n, res.Scenario.Instances, res.Scenario.Reps, res.Budget, factor, spec.RecoveryPolicy().Kind)
	fmt.Fprintf(stdout, "%8s %8s %9s %14s %12s %8s %8s %7s %7s %7s\n",
		"λ/hour", "success", "inBudget", "makespan", "cost", "crashes", "recov", "vetoed", "mk×", "cost×")
	for _, pt := range res.Points {
		fmt.Fprintf(stdout, "%8g %7.1f%% %8.1f%% %14.1f %12.4f %8.2f %8.2f %7.2f %7.3f %7.3f\n",
			pt.Rate, 100*pt.SuccessRate, 100*pt.WithinBudget, pt.Makespan.Mean, pt.Cost.Mean,
			pt.Crashes, pt.Recoveries, pt.RecoveriesVetoed, pt.MakespanFactor, pt.CostFactor)
	}
	return nil
}

// parseRates parses a comma-separated λ grid.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lam, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -fault-sweep entry %q: %w", part, err)
		}
		rates = append(rates, lam)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-fault-sweep lists no rates")
	}
	return rates, nil
}

func loadWorkflow(path, typ string, n int, seed uint64, sigma float64) (*wf.Workflow, error) {
	if path != "" {
		if strings.HasSuffix(path, ".dax") || strings.HasSuffix(path, ".xml") {
			return wf.LoadDAX(path)
		}
		return wf.LoadFile(path)
	}
	t, err := wfgen.ParseType(typ)
	if err != nil {
		return nil, err
	}
	w, err := wfgen.Generate(t, n, seed)
	if err != nil {
		return nil, err
	}
	return w.WithSigmaRatio(sigma), nil
}
