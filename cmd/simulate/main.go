// Command simulate replays a schedule under stochastic task weights
// and reports realized makespan/cost statistics, the paper's
// evaluation loop for a single (workflow, schedule) pair.
//
// Usage:
//
//	simulate -wf montage90.json -sched sched.json -reps 25 -budget 12.5
//	simulate -type ligo -n 30 -sigma 0.5 -alg heftbudg -budget-factor 1.5 -reps 100
//	simulate -type montage -n 30 -alg heftbudg -gantt -trace
//
// Either load a schedule produced by cmd/schedule (-sched), or plan
// in-process with -alg. Workflows come from -wf (JSON or DAX) or the
// generator flags. -deadline additionally reports the bi-criteria
// objective of Equation (3).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"budgetwf/internal/exp"
	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/rng"
	"budgetwf/internal/sched"
	"budgetwf/internal/sim"
	"budgetwf/internal/stats"
	"budgetwf/internal/viz"
	"budgetwf/internal/wf"
	"budgetwf/internal/wfgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		wfPath    = fs.String("wf", "", "workflow file, JSON or DAX (overrides generator flags)")
		typ       = fs.String("type", "montage", "generated workflow family")
		n         = fs.Int("n", 30, "generated workflow size")
		seed      = fs.Uint64("seed", 0, "generator seed")
		sigma     = fs.Float64("sigma", 0.5, "σ/w̄ ratio")
		schedPath = fs.String("sched", "", "schedule JSON from cmd/schedule")
		algName   = fs.String("alg", "heftbudg", "algorithm used when -sched is absent")
		budget    = fs.Float64("budget", 0, "budget in dollars")
		factor    = fs.Float64("budget-factor", 1.5, "budget as a multiple of the cheapest-schedule cost")
		deadline  = fs.Float64("deadline", 0, "deadline in seconds (0 = unconstrained)")
		reps      = fs.Int("reps", 25, "number of stochastic executions")
		simSeed   = fs.Uint64("sim-seed", 42, "simulation RNG seed")
		gantt     = fs.Bool("gantt", false, "render an ASCII Gantt chart of the first execution")
		trace     = fs.Bool("trace", false, "print a per-task trace of the first execution")
		chrome    = fs.String("chrome-trace", "", "write a Chrome trace-event JSON of the first execution here")
		svgGantt  = fs.String("svg-gantt", "", "write an SVG Gantt chart of the first execution here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := loadWorkflow(*wfPath, *typ, *n, *seed, *sigma)
	if err != nil {
		return err
	}
	p := platform.Default()
	anchors, err := exp.ComputeAnchors(w, p)
	if err != nil {
		return err
	}
	b := *budget
	if b == 0 {
		b = *factor * anchors.CheapCost
	}

	var s *plan.Schedule
	if *schedPath != "" {
		f, err := os.Open(*schedPath)
		if err != nil {
			return err
		}
		s, err = plan.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		alg, err := sched.ByName(sched.Name(*algName))
		if err != nil {
			return err
		}
		if s, err = alg.Plan(w, p, b); err != nil {
			return err
		}
	}
	if err := s.Validate(w, p.NumCategories()); err != nil {
		return fmt.Errorf("schedule does not fit workflow: %w", err)
	}

	obj := sim.Objective{Deadline: *deadline, Budget: b}
	var objStats sim.ObjectiveStats
	stream := rng.New(*simSeed)
	var mk, cost []float64
	for i := 0; i < *reps; i++ {
		r, err := sim.RunStochastic(w, p, s, stream.Split(uint64(i)))
		if err != nil {
			return err
		}
		if i == 0 && *gantt {
			if err := r.WriteGantt(stdout, w, s, 100); err != nil {
				return err
			}
		}
		if i == 0 && *trace {
			if err := r.WriteTrace(stdout, w, s); err != nil {
				return err
			}
		}
		if i == 0 && *svgGantt != "" {
			f, err := os.Create(*svgGantt)
			if err != nil {
				return err
			}
			if err := viz.RenderGanttSVG(f, w, s, r, "Gantt — "+w.Name); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "SVG gantt written to %s\n", *svgGantt)
		}
		if i == 0 && *chrome != "" {
			f, err := os.Create(*chrome)
			if err != nil {
				return err
			}
			if err := r.WriteChromeTrace(f, w, s); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "chrome trace written to %s (load in chrome://tracing)\n", *chrome)
		}
		mk = append(mk, r.Makespan)
		cost = append(cost, r.TotalCost)
		objStats.Observe(obj, r)
	}
	fmt.Fprintf(stdout, "workflow   %s, schedule with %d VMs, %d stochastic executions\n", w.Name, s.NumVMs(), *reps)
	fmt.Fprintf(stdout, "budget     $%.4f\n", b)
	fmt.Fprintf(stdout, "makespan   %s s\n", stats.Summarize(mk))
	fmt.Fprintf(stdout, "cost       %s $\n", stats.Summarize(cost))
	fmt.Fprintf(stdout, "valid      %.1f%% of executions within budget\n", 100*objStats.Frac(objStats.BudgetMet))
	if *deadline > 0 {
		fmt.Fprintf(stdout, "deadline   %.1f%% met the %.0f s deadline; %.1f%% met the full objective (Eq. 3)\n",
			100*objStats.Frac(objStats.DeadlineMet), *deadline, 100*objStats.Frac(objStats.BothMet))
	}
	return nil
}

func loadWorkflow(path, typ string, n int, seed uint64, sigma float64) (*wf.Workflow, error) {
	if path != "" {
		if strings.HasSuffix(path, ".dax") || strings.HasSuffix(path, ".xml") {
			return wf.LoadDAX(path)
		}
		return wf.LoadFile(path)
	}
	t, err := wfgen.ParseType(typ)
	if err != nil {
		return nil, err
	}
	w, err := wfgen.Generate(t, n, seed)
	if err != nil {
		return nil, err
	}
	return w.WithSigmaRatio(sigma), nil
}
