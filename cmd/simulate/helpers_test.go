package main

import (
	"os"

	"budgetwf/internal/plan"
	"budgetwf/internal/platform"
	"budgetwf/internal/sched"
	"budgetwf/internal/wf"
)

func planFor(w *wf.Workflow) (*plan.Schedule, error) {
	return sched.HeftBudg(w, platform.Default(), 100)
}

func createFile(path string) (*os.File, error) { return os.Create(path) }

func readFileHelper(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}
