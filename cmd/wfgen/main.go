// Command wfgen generates benchmark workflow instances as JSON files.
//
// Usage:
//
//	wfgen -type montage -n 90 -seed 0 -sigma 0.5 -out montage90.json
//	wfgen -type cybershake -n 30 -describe
//	wfgen -type ligo -n 30 -dot -out ligo.dot
//
// With -describe the workflow is summarized on stdout instead of (or
// in addition to) being written; with -dot Graphviz DOT is emitted
// instead of JSON.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"budgetwf/internal/wf"
	"budgetwf/internal/wfgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wfgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wfgen", flag.ContinueOnError)
	var (
		typ      = fs.String("type", "montage", "workflow family: cybershake|ligo|montage|epigenomics|sipht|random|chain|forkjoin|bagoftasks")
		n        = fs.Int("n", 30, "number of tasks")
		seed     = fs.Uint64("seed", 0, "generator seed")
		sigma    = fs.Float64("sigma", 0, "σ/w̄ ratio applied to every task (0 = deterministic weights)")
		out      = fs.String("out", "", "output path (default stdout)")
		describe = fs.Bool("describe", false, "print a structural summary")
		dot      = fs.Bool("dot", false, "emit Graphviz DOT instead of JSON")
		suite    = fs.String("suite", "", "write the full benchmark suite (all families × sizes × 5 seeds) into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite != "" {
		return writeSuite(stdout, *suite, *sigma)
	}

	t, err := wfgen.ParseType(*typ)
	if err != nil {
		return err
	}
	w, err := wfgen.Generate(t, *n, *seed)
	if err != nil {
		return err
	}
	if *sigma > 0 {
		w = w.WithSigmaRatio(*sigma)
	}
	if *describe {
		describeWorkflow(stdout, w)
	}

	sink := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}
	switch {
	case *dot:
		return w.WriteDOT(sink)
	case *out != "" || !*describe:
		return w.WriteJSON(sink)
	}
	return nil
}

// writeSuite materializes the paper's benchmark set — every family at
// 30/60/90 tasks with five seeded instances each (§V-A) — plus the two
// extension families, as JSON files named <family>-<n>-<seed>.json.
func writeSuite(out io.Writer, dir string, sigma float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	families := append(wfgen.AllPaperTypes(), wfgen.ExtendedTypes()...)
	count := 0
	for _, typ := range families {
		for _, n := range []int{30, 60, 90} {
			for seed := uint64(0); seed < 5; seed++ {
				w, err := wfgen.Generate(typ, n, seed)
				if err != nil {
					return fmt.Errorf("%s n=%d seed=%d: %w", typ, n, seed, err)
				}
				if sigma > 0 {
					w = w.WithSigmaRatio(sigma)
				}
				path := fmt.Sprintf("%s/%s-%d-%d.json", dir, typ, n, seed)
				if err := w.SaveFile(path); err != nil {
					return err
				}
				count++
			}
		}
	}
	fmt.Fprintf(out, "wrote %d workflows to %s\n", count, dir)
	return nil
}

func describeWorkflow(out io.Writer, w *wf.Workflow) {
	_, levels, err := w.Levels()
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprintf(out, "workflow   %s\n", w.Name)
	fmt.Fprintf(out, "tasks      %d (entries %d, exits %d)\n", w.NumTasks(), len(w.Entries()), len(w.Exits()))
	fmt.Fprintf(out, "edges      %d, internal data %.1f MB\n", w.NumEdges(), w.TotalDataSize()/1e6)
	fmt.Fprintf(out, "levels     %d\n", levels)
	fmt.Fprintf(out, "work       %.2e instructions (conservative %.2e)\n", w.TotalMeanWork(), w.TotalConservativeWork())
	fmt.Fprintf(out, "ext in/out %.1f MB / %.1f MB\n", w.ExternalInSize()/1e6, w.ExternalOutSize()/1e6)
}
