package main

import (
	"os"
	"strings"
	"testing"

	"budgetwf/internal/wf"
)

func TestRunJSONToFile(t *testing.T) {
	path := t.TempDir() + "/w.json"
	var out strings.Builder
	if err := run([]string{"-type", "montage", "-n", "30", "-sigma", "0.5", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	w, err := wf.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() != 30 {
		t.Errorf("%d tasks", w.NumTasks())
	}
	if w.Task(0).Weight.Sigma == 0 {
		t.Error("-sigma not applied")
	}
}

func TestRunJSONToStdout(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-type", "ligo", "-n", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	got, err := wf.ReadJSON(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != 30 {
		t.Errorf("%d tasks round-tripped", got.NumTasks())
	}
}

func TestRunDescribe(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-type", "cybershake", "-n", "30", "-describe"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workflow", "tasks      30", "levels", "ext in/out"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("describe output missing %q:\n%s", want, out.String())
		}
	}
	// Describe alone must not dump JSON.
	if strings.Contains(out.String(), "{") {
		t.Error("describe leaked JSON")
	}
}

func TestRunDOT(t *testing.T) {
	path := t.TempDir() + "/w.dot"
	var out strings.Builder
	if err := run([]string{"-type", "sipht", "-n", "20", "-dot", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "digraph") {
		t.Errorf("not DOT: %.60s", data)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-type", "bogus"}, &out); err == nil {
		t.Error("bogus type accepted")
	}
	if err := run([]string{"-type", "ligo", "-n", "7"}, &out); err == nil {
		t.Error("invalid LIGO size accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSuite(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-suite", dir, "-sigma", "0.5"}, &out); err != nil {
		t.Fatal(err)
	}
	// 5 families × 3 sizes × 5 seeds.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5*3*5 {
		t.Fatalf("%d files, want 75", len(entries))
	}
	w, err := wf.LoadFile(dir + "/montage-90-3.json")
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTasks() != 90 {
		t.Errorf("suite file has %d tasks", w.NumTasks())
	}
	if w.Task(0).Weight.Sigma == 0 {
		t.Error("suite sigma not applied")
	}
}
