// Command budgetwfd serves the budget-aware scheduling engine over
// HTTP: POST a workflow, platform, algorithm and budget to /v1/schedule
// and get a plan back; POST a plan to /v1/simulate for stochastic
// aggregates; POST a generator family to /v1/sweep for a
// Figure-1-style budget sweep.
//
// Usage:
//
//	budgetwfd -addr :8080 -workers 4 -queue 64 -cache-size 512 -timeout 30s
//	budgetwfd -pprof                     # also mount /debug/pprof/ on the API listener
//	budgetwfd -debug-addr 127.0.0.1:6060 # pprof + expvar on a separate private listener
//
// The daemon applies admission control (429 + Retry-After when the
// worker queue is full), caches plans by content hash, publishes
// expvar metrics under "budgetwfd" (also at GET /metrics), and drains
// gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"budgetwf/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "budgetwfd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("budgetwfd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth (-1 = no queue)")
	cacheSize := fs.Int("cache-size", 512, "plan cache entries (-1 = disable)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout (-1s = none)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof and expvar on this separate listener (unauthenticated; bind to localhost or a private interface only)")
	traceRing := fs.Int("trace-ring", 64, "recent request traces retained for GET /v1/traces/{id} (-1 = disable retention)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown grace period")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(server.Config{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		RequestTimeout: *timeout,
		EnablePprof:    *pprofOn,
		TraceRingSize:  *traceRing,
	})
	srv.PublishExpvar("budgetwfd")

	if *debugAddr != "" {
		dbg := newDebugServer(*debugAddr)
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "budgetwfd: debug listener: %v\n", err)
			}
		}()
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "budgetwfd: debug endpoints (pprof, expvar) on %s\n", *debugAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "budgetwfd: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "budgetwfd: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}

// newDebugServer builds the optional -debug-addr listener: the full
// net/http/pprof surface plus the process's expvar page (which carries
// the daemon's "budgetwfd" metrics map). It is mounted on its own
// http.Server so the profiling surface never shares a port with the
// public API; nothing here is authenticated.
func newDebugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
}
