// Command budgetwfd serves the budget-aware scheduling engine over
// HTTP: POST a workflow, platform, algorithm and budget to /v1/schedule
// and get a plan back; POST a plan to /v1/simulate for stochastic
// aggregates; POST a generator family to /v1/sweep for a
// Figure-1-style budget sweep.
//
// Usage:
//
//	budgetwfd -addr :8080 -workers 4 -queue 64 -cache-size 512 -timeout 30s
//	budgetwfd -pprof                     # also mount /debug/pprof/ on the API listener
//	budgetwfd -debug-addr 127.0.0.1:6060 # pprof + expvar on a separate private listener
//
// Cluster mode (see README "Operating the cluster"): start shard
// workers that register with the coordinator and heartbeat —
//
//	budgetwfd -addr :9091 -worker -coordinator http://c:8080 -advertise http://w1:9091
//	budgetwfd -addr :8080 -journal jobs.jsonl            # the coordinator
//
// The coordinator decomposes campaigns POSTed to /v1/jobs into
// deterministic shards, fans them out over the live fleet's
// POST /v1/shards (workers silent past -heartbeat-ttl stop receiving
// shards and their in-flight ones are speculatively re-issued), and
// merges the partial aggregates bit-identically to a single-process
// run. Static -peers still works and combines with dynamic
// registration. -worker widens the default -timeout to 10m (shards are
// long-running); every daemon always serves /v1/shards. A crashed
// coordinator restarted on the same -journal (or a standby started
// with -takeover) replays snapshot + tail and re-issues only the
// shards no worker acknowledged.
//
// Multi-tenant mode (see README "Multi-tenant service") mounts a
// continuously-running shared VM pool —
//
//	budgetwfd -pool -time-to-shutdown 360 -tenant-max-vms 16
//
// Tenants POST workflows to /v1/submit; idle VMs are leased across
// tenants within their already-paid billing period and deprovisioned
// when the next billing boundary is closer than -time-to-shutdown.
// Per-tenant billing ledgers appear at GET /v1/tenants and as
// budgetwfd_tenant_* series in GET /metrics?format=prometheus.
//
// The daemon applies admission control (429 + Retry-After when the
// worker queue is full), caches plans by content hash, publishes
// expvar metrics under "budgetwfd" (also at GET /metrics), and drains
// gracefully on SIGINT/SIGTERM — in-flight async jobs are re-queued to
// the -journal so the next start resumes them.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"budgetwf/internal/dist"
	"budgetwf/internal/obs"
	"budgetwf/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "budgetwfd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("budgetwfd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth (-1 = no queue)")
	cacheSize := fs.Int("cache-size", 512, "plan cache entries (-1 = disable)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout (-1s = none)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof and expvar on this separate listener (unauthenticated; bind to localhost or a private interface only)")
	traceRing := fs.Int("trace-ring", 64, "recent request traces retained for GET /v1/traces/{id} (-1 = disable retention)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown grace period")
	workerMode := fs.Bool("worker", false, "shard-worker mode: widen the default -timeout to 10m for long-running shards")
	peers := fs.String("peers", "", "comma-separated worker base URLs to shard async jobs across (e.g. http://w1:9090,http://w2:9090)")
	coordinator := fs.String("coordinator", "", "comma-separated coordinator base URLs to register this worker with (requires -advertise)")
	advertise := fs.String("advertise", "", "base URL other daemons should reach this one at (e.g. http://w1:9091)")
	heartbeatInterval := fs.Duration("heartbeat-interval", 2*time.Second, "worker registration heartbeat interval")
	heartbeatTTL := fs.Duration("heartbeat-ttl", 10*time.Second, "coordinator side: worker liveness TTL; silent workers turn suspect and their shards are re-issued")
	stealAfter := fs.Duration("steal-after", 30*time.Second, "coordinator side: in-flight shards older than this are speculatively re-executed elsewhere")
	journal := fs.String("journal", "", "async-job journal path; jobs survive crashes and draining restarts")
	takeover := fs.Bool("takeover", false, "adopt the -journal even if its lock names a live process (standby coordinator failover)")
	snapshotEvery := fs.Int("snapshot-every", 0, "compact the journal after this many tail records (0 = default 512, -1 = never)")
	maxJobs := fs.Int("max-jobs", 0, "retained async-job records (0 = default 256)")
	poolOn := fs.Bool("pool", false, "enable the multi-tenant shared-pool service (POST /v1/submit, GET /v1/tenants)")
	timeToShutdown := fs.Float64("time-to-shutdown", 0, "idle-VM release threshold in virtual seconds; an idle pooled VM is deprovisioned when the time to its next billing boundary drops below this (0 = 10% of -billing-quantum)")
	billingQuantum := fs.Float64("billing-quantum", 3600, "billing granularity of the shared pool's platform, in virtual seconds (VM lifetimes are billed in whole quanta; 0 = continuous per-second billing, which disables reuse)")
	tenantMaxVMs := fs.Int("tenant-max-vms", 16, "default fair-share cap on a tenant's concurrently provisioned VMs")
	tenantMaxQueued := fs.Int("tenant-max-queued", 8, "default fair-share cap on a tenant's concurrently queued-or-running workflows")
	poolSeed := fs.Uint64("pool-seed", 0, "seed for the shared pool's stochastic task-weight sampling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode && !flagSet(fs, "timeout") {
		*timeout = 10 * time.Minute
	}
	if *coordinator != "" && *advertise == "" {
		return fmt.Errorf("-coordinator requires -advertise (the URL coordinators should dispatch shards to)")
	}

	srv := server.New(server.Config{
		Addr:            *addr,
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		RequestTimeout:  *timeout,
		EnablePprof:     *pprofOn,
		TraceRingSize:   *traceRing,
		Peers:           splitPeers(*peers),
		HeartbeatTTL:    *heartbeatTTL,
		StealAfter:      *stealAfter,
		JournalPath:     *journal,
		JournalTakeover: *takeover,
		SnapshotEvery:   *snapshotEvery,
		MaxJobs:         *maxJobs,

		EnablePool:         *poolOn,
		PoolTimeToShutdown: *timeToShutdown,
		PoolBillingQuantum: *billingQuantum,
		TenantMaxVMs:       *tenantMaxVMs,
		TenantMaxQueued:    *tenantMaxQueued,
		PoolSeed:           *poolSeed,
	})
	srv.PublishExpvar("budgetwfd")
	if ps := splitPeers(*peers); len(ps) > 0 {
		fmt.Fprintf(os.Stderr, "budgetwfd: coordinating %d shard workers: %s\n", len(ps), strings.Join(ps, ", "))
	}
	if *workerMode {
		fmt.Fprintf(os.Stderr, "budgetwfd: worker mode, request timeout %s\n", *timeout)
	}
	if *poolOn {
		fmt.Fprintf(os.Stderr, "budgetwfd: shared pool enabled (billing quantum %gs, time to shutdown %gs, tenant caps %d VMs / %d queued)\n",
			*billingQuantum, *timeToShutdown, *tenantMaxVMs, *tenantMaxQueued)
	}

	if *debugAddr != "" {
		dbg := newDebugServer(*debugAddr)
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "budgetwfd: debug listener: %v\n", err)
			}
		}()
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "budgetwfd: debug endpoints (pprof, expvar) on %s\n", *debugAddr)
	}

	// Worker-side membership: register with every coordinator and keep
	// heartbeating so this daemon stays in the live fleet.
	var hbDone chan struct{}
	var hbCancel context.CancelFunc
	if *coordinator != "" {
		hbCtx, cancel := context.WithCancel(context.Background())
		hbCancel = cancel
		hbDone = make(chan struct{})
		// The worker's process-level flight recorder: heartbeat delivery
		// events accumulate on it, and its id rides every beat so
		// coordinators can correlate. It lives in this worker's own
		// trace ring under the fixed id "worker", queryable even after
		// every coordinator has forgotten this process.
		wt := obs.New("worker:" + strings.TrimRight(*advertise, "/"))
		wt.SetID("worker")
		wt.Root().Set(obs.Str("advertise", strings.TrimRight(*advertise, "/")))
		srv.Traces().Add(wt)
		hb := &dist.Heartbeat{
			Coordinators: splitPeers(*coordinator),
			Self:         strings.TrimRight(*advertise, "/"),
			Interval:     *heartbeatInterval,
			Span:         wt.Root(),
		}
		go func() { hb.Run(hbCtx); close(hbDone) }()
		fmt.Fprintf(os.Stderr, "budgetwfd: heartbeating to %s as %s every %s\n",
			strings.Join(splitPeers(*coordinator), ", "), *advertise, *heartbeatInterval)
	}
	stopHeartbeat := func() {
		if hbCancel != nil {
			hbCancel()
			<-hbDone // waits for the best-effort deregistration
			hbCancel = nil
		}
	}
	defer stopHeartbeat()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "budgetwfd: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "budgetwfd: %v, draining\n", sig)
		stopHeartbeat() // leave the fleet before shards stop being served
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}

// splitPeers parses the -peers list, trimming blanks so a trailing
// comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// flagSet reports whether the user set the named flag explicitly.
func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// newDebugServer builds the optional -debug-addr listener: the full
// net/http/pprof surface plus the process's expvar page (which carries
// the daemon's "budgetwfd" metrics map). It is mounted on its own
// http.Server so the profiling surface never shares a port with the
// public API; nothing here is authenticated.
func newDebugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
}
