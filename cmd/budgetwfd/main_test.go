package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDebugServerEndpoints: the -debug-addr mux serves the pprof index
// and the expvar page, and nothing else (in particular not the API).
func TestDebugServerEndpoints(t *testing.T) {
	dbg := newDebugServer("127.0.0.1:0")
	ts := httptest.NewServer(dbg.Handler)
	defer ts.Close()

	fetch := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := fetch("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: code %d, body %.60q", code, body)
	}
	if code, body := fetch("/debug/vars"); code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("expvar page: code %d, body %.60q", code, body)
	}
	if code, _ := fetch("/v1/schedule"); code != http.StatusNotFound {
		t.Errorf("debug listener serves API paths: /v1/schedule = %d, want 404", code)
	}
}
