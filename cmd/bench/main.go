// Command bench runs the repository's deterministic benchmark suites
// and maintains the committed BENCH_*.json baselines at the repo root.
//
// Regenerate all baselines (what `make bench-json` does):
//
//	bench -benchtime 2x -out .
//
// Smoke-run one suite without touching files:
//
//	bench -suite sim -benchtime 1x -out /tmp/bench
//
// Validate committed baselines against the current suite definitions
// (what CI does — schema intact, case list unchanged):
//
//	bench -check -out .
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"budgetwf/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	suite := fs.String("suite", "all", "suite to run: "+strings.Join(bench.SuiteNames(), ", ")+", or all")
	benchtime := fs.String("benchtime", "2x", "per-case measuring budget (testing -benchtime syntax: 100ms, 1x, ...)")
	out := fs.String("out", ".", "directory for BENCH_<suite>.json files")
	check := fs.Bool("check", false, "validate existing BENCH files against the current suite definitions instead of running")
	seed := fs.Uint64("seed", 1, "seed for workflow generation and weight sampling")
	if err := fs.Parse(args); err != nil {
		return err
	}

	suites, err := selectSuites(*suite)
	if err != nil {
		return err
	}
	if *check {
		return checkFiles(*out, *seed, suites, stdout)
	}
	if err := bench.SetBenchtime(*benchtime); err != nil {
		return fmt.Errorf("bad -benchtime: %w", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, name := range suites {
		cases, err := bench.Suites()[name](*seed)
		if err != nil {
			return fmt.Errorf("building suite %s: %w", name, err)
		}
		fmt.Fprintf(stdout, "suite %s: %d cases, benchtime %s\n", name, len(cases), *benchtime)
		f, err := bench.RunSuite(name, *seed, cases, stdout)
		if err != nil {
			return err
		}
		path := benchPath(*out, name)
		if err := f.WriteFile(path); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	return nil
}

func benchPath(dir, suite string) string {
	return filepath.Join(dir, "BENCH_"+suite+".json")
}

func selectSuites(arg string) ([]string, error) {
	if arg == "all" {
		return bench.SuiteNames(), nil
	}
	var out []string
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if _, ok := bench.Suites()[name]; !ok {
			return nil, fmt.Errorf("unknown suite %q (have %s)", name, strings.Join(bench.SuiteNames(), ", "))
		}
		out = append(out, name)
	}
	return out, nil
}

// checkFiles validates each suite's committed baseline: parseable,
// schema-consistent, and with exactly the case list the current code
// defines — so a PR that changes a suite must regenerate its baseline.
func checkFiles(dir string, seed uint64, suites []string, stdout io.Writer) error {
	var failures []string
	for _, name := range suites {
		path := benchPath(dir, name)
		cases, err := bench.Suites()[name](seed)
		if err != nil {
			return fmt.Errorf("building suite %s: %w", name, err)
		}
		f, err := bench.ReadFile(path)
		if err != nil {
			failures = append(failures, err.Error())
			continue
		}
		if err := f.Validate(name, bench.CaseNames(cases)); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		fmt.Fprintf(stdout, "%s: ok (%d cases, %s, seed %d)\n", path, len(f.Results), f.GoVersion, f.Seed)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d baseline(s) invalid:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}
