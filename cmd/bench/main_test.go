package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSimSuiteThenCheck is the end-to-end smoke path CI exercises:
// run one suite at -benchtime=1x into a temp dir, then validate the
// produced file with -check.
func TestRunSimSuiteThenCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmark iterations")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-suite", "sim", "-benchtime", "1x", "-out", dir}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	path := filepath.Join(dir, "BENCH_sim.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-check", "-suite", "sim", "-out", dir}, &out); err != nil {
		t.Fatalf("check: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok (") {
		t.Fatalf("check output: %s", out.String())
	}

	// A tampered baseline must fail the check.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(raw, []byte(`"suite": "sim"`), []byte(`"suite": "nope"`), 1)
	if bytes.Equal(bad, raw) {
		t.Fatal("tamper target not found in baseline")
	}
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", "-suite", "sim", "-out", dir}, &out); err == nil {
		t.Fatal("tampered baseline passed -check")
	}
}

func TestCheckMissingFile(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-check", "-suite", "sim", "-out", t.TempDir()}, &out)
	if err == nil {
		t.Fatal("missing baseline passed -check")
	}
}

func TestSelectSuites(t *testing.T) {
	all, err := selectSuites("all")
	if err != nil || len(all) != 4 {
		t.Fatalf("all: %v %v", all, err)
	}
	two, err := selectSuites("sim, daemon")
	if err != nil || len(two) != 2 || two[0] != "sim" || two[1] != "daemon" {
		t.Fatalf("list: %v %v", two, err)
	}
	if _, err := selectSuites("bogus"); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-suite", "bogus"}, &out); err == nil {
		t.Fatal("unknown suite accepted")
	}
	if err := run([]string{"-suite", "sim", "-benchtime", "not-a-time", "-out", t.TempDir()}, &out); err == nil {
		t.Fatal("bad benchtime accepted")
	}
}
