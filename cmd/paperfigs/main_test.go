package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFigure1Quick(t *testing.T) {
	dir := t.TempDir()
	var out, errw strings.Builder
	if err := run([]string{"-fig", "1", "-quick", "-out", dir}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Error("ASCII output missing title")
	}
	csvs, err := filepath.Glob(dir + "/1_*.csv")
	if err != nil || len(csvs) != 3 {
		t.Fatalf("%d CSVs written (%v), want 3", len(csvs), err)
	}
	data, err := os.ReadFile(csvs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "makespan_mean") {
		t.Error("CSV missing header")
	}
	if !strings.Contains(errw.String(), "[1] done") {
		t.Error("progress log missing")
	}
}

func TestRunSigmaQuick(t *testing.T) {
	dir := t.TempDir()
	var out, errw strings.Builder
	if err := run([]string{"-fig", "sigma", "-quick", "-out", dir}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"0.25", "1.00"} {
		if !strings.Contains(out.String(), s) {
			t.Errorf("sigma output missing σ=%s", s)
		}
	}
}

func TestRunTable3bQuick(t *testing.T) {
	dir := t.TempDir()
	var out, errw strings.Builder
	if err := run([]string{"-table", "3b", "-quick", "-out", dir}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table III(b)") {
		t.Error("table output missing")
	}
	// Quick mode uses sizes 30 and 60 only.
	if strings.Contains(out.String(), "\n400") {
		t.Error("quick mode ran n=400")
	}
}

func TestRunSelectionErrors(t *testing.T) {
	var out, errw strings.Builder
	if err := run([]string{"-out", t.TempDir()}, &out, &errw); err == nil {
		t.Error("no selection accepted")
	}
	if err := run([]string{"-fig", "99", "-out", t.TempDir()}, &out, &errw); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunHTMLReport(t *testing.T) {
	dir := t.TempDir()
	htmlPath := dir + "/report.html"
	var out, errw strings.Builder
	if err := run([]string{"-fig", "1", "-quick", "-svg", "-out", dir, "-html", htmlPath}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"<!DOCTYPE html>", "reproduction report", "<h2>Figure 1</h2>",
		"<svg", "min_cost", "<table>", "makespan_mean",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// 9 inline SVG panels (3 families × 3 panels).
	if n := strings.Count(doc, "<svg"); n != 9 {
		t.Errorf("%d inline SVGs, want 9", n)
	}
}
