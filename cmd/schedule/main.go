// Command schedule plans one workflow with one algorithm under a
// budget, prints the planner's view, and optionally saves the schedule
// as JSON for cmd/simulate.
//
// Usage:
//
//	schedule -wf montage90.json -alg heftbudg -budget 12.5 -out sched.json
//	schedule -type ligo -n 30 -sigma 0.5 -alg heftbudg+ -budget-factor 1.5
//	schedule -wf workflow.dax -alg heftbudg -budget 5
//	schedule -type montage -n 50 -alg heftbudg+ -trace plan-trace.json
//
// A workflow comes either from -wf (JSON, or Pegasus DAX when the file
// ends in .dax/.xml) or from the generator flags (-type/-n/-seed/
// -sigma). The budget comes either from -budget (dollars) or from
// -budget-factor (a multiple of the instance's cheapest-schedule
// cost). -trace records the planner's decision process — per-task
// candidate evaluations, budget-guard verdicts, refinement upgrades —
// as Chrome trace-event JSON, loadable in chrome://tracing or Perfetto.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"budgetwf/internal/exp"
	"budgetwf/internal/obs"
	"budgetwf/internal/platform"
	"budgetwf/internal/sched"
	"budgetwf/internal/wf"
	"budgetwf/internal/wfgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedule:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	var (
		wfPath  = fs.String("wf", "", "workflow file, JSON or DAX (overrides generator flags)")
		typ     = fs.String("type", "montage", "generated workflow family")
		n       = fs.Int("n", 30, "generated workflow size")
		seed    = fs.Uint64("seed", 0, "generator seed")
		sigma   = fs.Float64("sigma", 0.5, "σ/w̄ ratio")
		algName = fs.String("alg", "heftbudg", "algorithm: minmin|heft|minminbudg|heftbudg|heftbudg+|heftbudg+inv|bdt|cg|cg+")
		budget  = fs.Float64("budget", 0, "budget in dollars")
		factor  = fs.Float64("budget-factor", 1.5, "budget as a multiple of the cheapest-schedule cost (used when -budget is 0)")
		out     = fs.String("out", "", "write the schedule JSON here")
		traceTo = fs.String("trace", "", "write a Chrome trace-event JSON of the planner's decisions here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := loadWorkflow(*wfPath, *typ, *n, *seed, *sigma)
	if err != nil {
		return err
	}
	p := platform.Default()
	alg, err := sched.ByName(sched.Name(*algName))
	if err != nil {
		return err
	}
	anchors, err := exp.ComputeAnchors(w, p)
	if err != nil {
		return err
	}
	b := *budget
	if b == 0 {
		b = *factor * anchors.CheapCost
	}

	var tr *obs.Trace
	ctx := context.Background()
	if *traceTo != "" {
		tr = obs.New("schedule")
		tr.Root().Set(obs.Str("workflow", w.Name), obs.Int("tasks", w.NumTasks()))
		ctx = obs.WithSpan(ctx, tr.Root())
	}
	s, err := sched.PlanContext(ctx, alg.Name, w, p, b)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "workflow       %s (%d tasks)\n", w.Name, w.NumTasks())
	fmt.Fprintf(stdout, "algorithm      %s\n", alg.Name)
	fmt.Fprintf(stdout, "budget         $%.4f (cheapest schedule costs $%.4f)\n", b, anchors.CheapCost)
	fmt.Fprintf(stdout, "planned VMs    %d\n", s.NumVMs())
	fmt.Fprintf(stdout, "est. makespan  %.1f s (budget-blind HEFT: %.1f s)\n", s.EstMakespan, anchors.BaselineMakespan)
	fmt.Fprintf(stdout, "est. cost      $%.4f\n", s.EstCost)
	perCat := make(map[int]int)
	for _, c := range s.VMCats {
		perCat[c]++
	}
	for k, cat := range p.Categories {
		if perCat[k] > 0 {
			fmt.Fprintf(stdout, "  %-8s ×%d (%.1e instr/s, $%.4f/h)\n", cat.Name, perCat[k], cat.Speed, cat.CostPerSec*3600)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "schedule saved to %s\n", *out)
	}
	if tr != nil {
		tr.EndAll()
		f, err := os.Create(*traceTo)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "planner trace written to %s (load in chrome://tracing)\n", *traceTo)
	}
	return nil
}

func loadWorkflow(path, typ string, n int, seed uint64, sigma float64) (*wf.Workflow, error) {
	if path != "" {
		if strings.HasSuffix(path, ".dax") || strings.HasSuffix(path, ".xml") {
			return wf.LoadDAX(path)
		}
		return wf.LoadFile(path)
	}
	t, err := wfgen.ParseType(typ)
	if err != nil {
		return nil, err
	}
	w, err := wfgen.Generate(t, n, seed)
	if err != nil {
		return nil, err
	}
	return w.WithSigmaRatio(sigma), nil
}
