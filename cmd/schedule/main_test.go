package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"budgetwf/internal/plan"
)

func TestRunGeneratedWorkflow(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-type", "montage", "-n", "30", "-alg", "heftbudg", "-budget-factor", "1.5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MONTAGE-30-seed0", "heftbudg", "planned VMs", "est. makespan"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSavesSchedule(t *testing.T) {
	path := t.TempDir() + "/s.json"
	var out strings.Builder
	err := run([]string{"-type", "ligo", "-n", "30", "-alg", "minminbudg", "-budget", "2", "-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := plan.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVMs() == 0 {
		t.Error("saved schedule has no VMs")
	}
}

func TestRunWorkflowFromFile(t *testing.T) {
	wfPath := t.TempDir() + "/w.json"
	var out strings.Builder
	// Generate a workflow file using wfgen's JSON format via the wf
	// package (the same code path cmd/wfgen uses).
	if err := run([]string{"-type", "cybershake", "-n", "30", "-alg", "heft"}, &out); err != nil {
		t.Fatal(err)
	}
	// Round-trip through a file.
	if err := writeGenerated(wfPath); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-wf", wfPath, "-alg", "cg", "-budget", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cg") {
		t.Error("file-based run missing algorithm name")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alg", "bogus"}, &out); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if err := run([]string{"-wf", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing workflow file accepted")
	}
}

func writeGenerated(path string) error {
	w, err := loadWorkflow("", "montage", 30, 0, 0.5)
	if err != nil {
		return err
	}
	return w.SaveFile(path)
}

func TestRunWritesPlannerTrace(t *testing.T) {
	path := t.TempDir() + "/plan-trace.json"
	var out strings.Builder
	err := run([]string{"-type", "montage", "-n", "20", "-alg", "heftbudg+", "-budget-factor", "2", "-trace", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "planner trace written to") {
		t.Errorf("no trace confirmation:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not Chrome trace-event JSON: %v", err)
	}
	guards, planSpans := 0, 0
	for _, e := range doc.TraceEvents {
		if e.Name == "budget-guard" && e.Ph == "i" {
			guards++
		}
		if e.Name == "plan:heftbudg+" && e.Ph == "X" {
			planSpans++
		}
	}
	if guards != 20 {
		t.Errorf("trace has %d budget-guard instants, want 20", guards)
	}
	if planSpans != 1 {
		t.Errorf("trace has %d plan:heftbudg+ spans, want 1", planSpans)
	}
}
