module budgetwf

go 1.22
